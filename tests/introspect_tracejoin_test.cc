// Adversarial-timing contract for the cross-process trace join
// (src/introspect/tracejoin.h): clock-offset recovery under asymmetric
// delay, joins under reordered responses, lost datagrams, duplicate
// request_ids across flows, and zero-sample windows; plus the JSON parse
// layer both tools feed (psp_loadgen --json, /lifecycle.json).
#include "src/introspect/tracejoin.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace psp {
namespace {

// A client record whose echoed stamps embed a server clock offset `offset`
// with chosen one-way delays. RTT spans send → recv.
ClientTraceRecord MakeClient(uint64_t id, uint32_t flow, Nanos send,
                             Nanos offset, Nanos out_delay, Nanos back_delay,
                             Nanos service = 1000) {
  ClientTraceRecord rec;
  rec.request_id = id;
  rec.flow = flow;
  rec.wire_type = 1;
  rec.due_ns = send - 100;
  rec.send_ns = send;
  rec.server_rx_ns = send + out_delay + offset;
  rec.server_tx_ns = rec.server_rx_ns + service;
  rec.recv_ns = send + out_delay + service + back_delay;
  return rec;
}

ServerTraceRecord MakeServer(uint64_t wire_id, uint32_t client_id,
                             Nanos rx_server_clock) {
  ServerTraceRecord rec;
  rec.request_id = wire_id * 1000;  // server-local id, deliberately different
  rec.type = 1;
  rec.type_name = "SHORT";
  rec.worker = 0;
  rec.wire_request_id = wire_id;
  rec.client_id = client_id;
  Nanos at = rx_server_clock;
  for (size_t s = 0; s < kNumTraceStages; ++s) {
    rec.stamp[s] = at;
    at += 100;
  }
  return rec;
}

// ---------------------------------------------------------------------------
// Clock-offset estimation

TEST(ClockOffset, RecoversOffsetWithSymmetricMinDelays) {
  // Minimum out and back delays equal (the NTP assumption holds exactly) →
  // the estimator recovers the offset exactly, even with jittered samples
  // layered on top.
  const Nanos kOffset = 5'000'000'000;  // five seconds of clock skew
  std::vector<ClientTraceRecord> samples;
  samples.push_back(MakeClient(1, 0, 10'000, kOffset, 200, 200));
  // Jittered samples: never below the floor in either direction.
  samples.push_back(MakeClient(2, 0, 20'000, kOffset, 900, 350));
  samples.push_back(MakeClient(3, 0, 30'000, kOffset, 240, 4'000));

  const ClockOffsetEstimate est = EstimateClockOffset(samples);
  ASSERT_TRUE(est.valid);
  EXPECT_EQ(est.samples, 3u);
  EXPECT_EQ(est.offset, kOffset);
  EXPECT_EQ(est.uncertainty, 200);
  EXPECT_EQ(est.ToClientClock(kOffset + 777), 777);
}

TEST(ClockOffset, AsymmetryBoundedByUncertainty) {
  // Min delays 100 out / 500 back: the estimate is off by the asymmetry
  // (200ns here) but always within the reported uncertainty.
  const Nanos kOffset = -3'000'000;  // server clock behind the client
  std::vector<ClientTraceRecord> samples;
  samples.push_back(MakeClient(1, 0, 10'000'000, kOffset, 100, 500));
  samples.push_back(MakeClient(2, 0, 20'000'000, kOffset, 150, 800));

  const ClockOffsetEstimate est = EstimateClockOffset(samples);
  ASSERT_TRUE(est.valid);
  const Nanos err = est.offset - kOffset;
  EXPECT_LE(err < 0 ? -err : err, est.uncertainty);
}

TEST(ClockOffset, HugeEpochGapDoesNotOverflow) {
  // TSC-style clocks can disagree by machine uptime. Half-then-subtract must
  // keep the arithmetic inside int64 even near the extremes.
  const Nanos kOffset = int64_t{4'000'000'000} * 1'000'000'000 / 2;
  std::vector<ClientTraceRecord> samples;
  samples.push_back(MakeClient(1, 0, 1'000'000, kOffset, 300, 300));
  const ClockOffsetEstimate est = EstimateClockOffset(samples);
  ASSERT_TRUE(est.valid);
  EXPECT_EQ(est.offset, kOffset);
}

TEST(ClockOffset, SkipsUnstampedAndInvalidWithNone) {
  std::vector<ClientTraceRecord> samples;
  ClientTraceRecord unstamped;  // response arrived without echoed stamps
  unstamped.request_id = 9;
  unstamped.send_ns = 100;
  unstamped.recv_ns = 200;
  samples.push_back(unstamped);

  const ClockOffsetEstimate est = EstimateClockOffset(samples);
  EXPECT_FALSE(est.valid);
  EXPECT_EQ(est.samples, 0u);
  EXPECT_EQ(est.offset, 0);

  EXPECT_FALSE(EstimateClockOffset({}).valid);
}

// ---------------------------------------------------------------------------
// Join semantics

TEST(JoinTraces, ReorderedResponsesSortBySendTime) {
  // Client records arrive in completion order, not send order (a LONG sent
  // first completes last). The join output must be send-ordered regardless.
  std::vector<ClientTraceRecord> client;
  client.push_back(MakeClient(2, 0, 30'000, 0, 200, 200));
  client.push_back(MakeClient(1, 0, 10'000, 0, 200, 200, /*service=*/50'000));
  client.push_back(MakeClient(3, 0, 40'000, 0, 200, 200));
  std::vector<ServerTraceRecord> server = {MakeServer(1, 0, 10'200),
                                           MakeServer(2, 0, 30'200),
                                           MakeServer(3, 0, 40'200)};

  JoinStats stats;
  const std::vector<JoinedSpan> spans = JoinTraces(client, server, &stats);
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(stats.joined, 3u);
  EXPECT_EQ(stats.client_only, 0u);
  EXPECT_EQ(stats.server_only, 0u);
  EXPECT_EQ(spans[0].client.request_id, 1u);
  EXPECT_EQ(spans[1].client.request_id, 2u);
  EXPECT_EQ(spans[2].client.request_id, 3u);
  for (const JoinedSpan& s : spans) {
    ASSERT_TRUE(s.has_server);
    EXPECT_EQ(s.server.wire_request_id, s.client.request_id);
  }
}

TEST(JoinTraces, LostDatagramsLeaveUnmatchedHalves) {
  // Request 2's response was lost (client never recorded it, server did);
  // request 3's lifecycle record was overwritten in the ring (client only).
  std::vector<ClientTraceRecord> client = {
      MakeClient(1, 0, 10'000, 0, 200, 200),
      MakeClient(3, 0, 30'000, 0, 200, 200)};
  std::vector<ServerTraceRecord> server = {MakeServer(1, 0, 10'200),
                                           MakeServer(2, 0, 20'200)};

  JoinStats stats;
  const std::vector<JoinedSpan> spans = JoinTraces(client, server, &stats);
  ASSERT_EQ(spans.size(), 2u);  // every client sample renders, joined or not
  EXPECT_EQ(stats.joined, 1u);
  EXPECT_EQ(stats.client_only, 1u);
  EXPECT_EQ(stats.server_only, 1u);
  EXPECT_TRUE(spans[0].has_server);
  EXPECT_FALSE(spans[1].has_server);
}

TEST(JoinTraces, DuplicateRequestIdsAcrossFlowsJoinByFlow) {
  // Two flows both carry wire request_id 7: the flow (wire client_id) must
  // disambiguate — a join on request_id alone would cross the streams.
  std::vector<ClientTraceRecord> client = {
      MakeClient(7, /*flow=*/0, 10'000, 0, 200, 200),
      MakeClient(7, /*flow=*/1, 11'000, 0, 200, 200)};
  std::vector<ServerTraceRecord> server = {MakeServer(7, /*client_id=*/1,
                                                      11'200),
                                           MakeServer(7, /*client_id=*/0,
                                                      10'200)};

  JoinStats stats;
  const std::vector<JoinedSpan> spans = JoinTraces(client, server, &stats);
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(stats.joined, 2u);
  EXPECT_EQ(stats.duplicate_keys, 0u);
  ASSERT_TRUE(spans[0].has_server);
  ASSERT_TRUE(spans[1].has_server);
  // Send-ordered: flow 0 first, matched to the client_id=0 lifecycle record.
  EXPECT_EQ(spans[0].client.flow, 0u);
  EXPECT_EQ(spans[0].server.client_id, 0u);
  EXPECT_EQ(spans[0].server.stamp[0], 10'200);
  EXPECT_EQ(spans[1].server.client_id, 1u);
  EXPECT_EQ(spans[1].server.stamp[0], 11'200);
}

TEST(JoinTraces, DuplicateServerKeysFirstWins) {
  std::vector<ClientTraceRecord> client = {
      MakeClient(5, 0, 10'000, 0, 200, 200)};
  std::vector<ServerTraceRecord> server = {MakeServer(5, 0, 10'200),
                                           MakeServer(5, 0, 99'999)};

  JoinStats stats;
  const std::vector<JoinedSpan> spans = JoinTraces(client, server, &stats);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(stats.joined, 1u);
  EXPECT_EQ(stats.duplicate_keys, 1u);
  EXPECT_EQ(spans[0].server.stamp[0], 10'200);
}

TEST(JoinTraces, ZeroSampleWindow) {
  JoinStats stats;
  const std::vector<JoinedSpan> spans = JoinTraces({}, {}, &stats);
  EXPECT_TRUE(spans.empty());
  EXPECT_EQ(stats.joined, 0u);
  // The export of an empty window is still a valid, loadable trace.
  const std::string trace = ExportJoinedTrace(spans, ClockOffsetEstimate{});
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_EQ(trace.find("client-queue"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Export shape

TEST(ExportJoinedTrace, FullyJoinedSpanCoversAllStages) {
  std::vector<ClientTraceRecord> client = {
      MakeClient(1, 0, 10'000, /*offset=*/1'000'000, 200, 200)};
  std::vector<ServerTraceRecord> server = {
      MakeServer(1, 0, client[0].server_rx_ns)};
  JoinStats stats;
  const std::vector<JoinedSpan> spans = JoinTraces(client, server, &stats);
  ASSERT_EQ(stats.joined, 1u);
  const ClockOffsetEstimate clocks = EstimateClockOffset(client);
  ASSERT_TRUE(clocks.valid);

  const std::string trace = ExportJoinedTrace(spans, clocks);
  for (const char* name :
       {"client-queue", "wire-out", "wire-back", "classify", "enqueue",
        "queue", "handoff", "service", "reply"}) {
    EXPECT_NE(trace.find(std::string("\"name\":\"") + name + "\""),
              std::string::npos)
        << name;
  }
  // Async span open/close pair carries the request identity.
  EXPECT_NE(trace.find("\"ph\":\"b\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"e\""), std::string::npos);
  EXPECT_NE(trace.find("f0r1"), std::string::npos);
  // Server slice names come from the lifecycle record's type name.
  EXPECT_NE(trace.find("SHORT"), std::string::npos);
}

TEST(ExportJoinedTrace, InvalidClocksDropServerAndWireSlices) {
  // Without a clock fix the server stamps cannot be placed on the client
  // timeline: render client-side slices only, never garbage coordinates.
  std::vector<ClientTraceRecord> client = {
      MakeClient(1, 0, 10'000, 0, 200, 200)};
  client[0].server_rx_ns = 0;  // unstamped: estimator gets nothing
  client[0].server_tx_ns = 0;
  std::vector<ServerTraceRecord> server = {MakeServer(1, 0, 10'200)};
  JoinStats stats;
  const std::vector<JoinedSpan> spans = JoinTraces(client, server, &stats);
  const ClockOffsetEstimate clocks = EstimateClockOffset(client);
  ASSERT_FALSE(clocks.valid);

  const std::string trace = ExportJoinedTrace(spans, clocks);
  EXPECT_NE(trace.find("client-queue"), std::string::npos);
  EXPECT_EQ(trace.find("wire-out"), std::string::npos);
  EXPECT_EQ(trace.find("\"name\":\"service\""), std::string::npos);
}

TEST(ExportJoinedTrace, Deterministic) {
  std::vector<ClientTraceRecord> client = {
      MakeClient(1, 0, 10'000, 0, 200, 200),
      MakeClient(2, 1, 12'000, 0, 200, 200)};
  std::vector<ServerTraceRecord> server = {MakeServer(1, 0, 10'200),
                                           MakeServer(2, 1, 12'200)};
  JoinStats stats;
  const std::vector<JoinedSpan> spans = JoinTraces(client, server, &stats);
  const ClockOffsetEstimate clocks = EstimateClockOffset(client);
  EXPECT_EQ(ExportJoinedTrace(spans, clocks), ExportJoinedTrace(spans, clocks));
}

// ---------------------------------------------------------------------------
// Parse layer

TEST(ParseClientSamples, LoadgenReportShape) {
  const std::string json = R"({
    "policy": "darc", "sample_every": 64,
    "samples": [
      {"request_id": 64, "flow": 0, "wire_type": 1, "due_ns": 100,
       "send_ns": 110, "recv_ns": 900, "server_rx_ns": 400,
       "server_tx_ns": 600},
      {"request_id": 128, "flow": 1, "wire_type": 2, "due_ns": 1000,
       "send_ns": 1010, "recv_ns": 2000, "server_rx_ns": 0,
       "server_tx_ns": 0}
    ]
  })";
  std::vector<ClientTraceRecord> out;
  std::string error;
  ASSERT_TRUE(ParseClientSamplesJson(json, &out, &error)) << error;
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].request_id, 64u);
  EXPECT_EQ(out[0].server_tx_ns, 600);
  EXPECT_EQ(out[1].flow, 1u);
  EXPECT_EQ(out[1].server_rx_ns, 0);
}

TEST(ParseClientSamples, MissingSamplesKeyIsEmptyNotError) {
  std::vector<ClientTraceRecord> out;
  std::string error;
  ASSERT_TRUE(ParseClientSamplesJson(R"({"policy":"darc"})", &out, &error));
  EXPECT_TRUE(out.empty());
}

TEST(ParseClientSamples, PreservesLargeTimestampsExactly) {
  // TSC-derived nanos exceed 2^53: a double round-trip would corrupt them.
  const int64_t big = (int64_t{1} << 62) + 12345;
  const std::string json = "[{\"request_id\": 1, \"flow\": 0, "
                           "\"send_ns\": " + std::to_string(big) + "}]";
  std::vector<ClientTraceRecord> out;
  std::string error;
  ASSERT_TRUE(ParseClientSamplesJson(json, &out, &error)) << error;
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].send_ns, big);
}

TEST(ParseClientSamples, MalformedJsonFails) {
  std::vector<ClientTraceRecord> out;
  std::string error;
  EXPECT_FALSE(ParseClientSamplesJson("{\"samples\": [", &out, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(ParseClientSamplesJson("", &out, &error));
  EXPECT_FALSE(ParseClientSamplesJson("\"just a string\"", &out, &error));
}

TEST(ParseLifecycle, RoundTripsRecords) {
  const std::string json = R"({
    "traces": [
      {"request_id": 42, "type": 1, "type_name": "SHORT", "worker": 3,
       "wire_request_id": 64, "client_id": 2,
       "stamps": {"rx": 100, "classified": 110, "enqueued": 120,
                  "dispatched": 130, "handler_start": 140,
                  "handler_end": 150, "tx": 160}}
    ]
  })";
  std::vector<ServerTraceRecord> out;
  std::string error;
  ASSERT_TRUE(ParseLifecycleJson(json, &out, &error)) << error;
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].request_id, 42u);
  EXPECT_EQ(out[0].type_name, "SHORT");
  EXPECT_EQ(out[0].worker, 3u);
  EXPECT_EQ(out[0].wire_request_id, 64u);
  EXPECT_EQ(out[0].client_id, 2u);
  EXPECT_EQ(out[0].stamp[0], 100);
  EXPECT_EQ(out[0].stamp[kNumTraceStages - 1], 160);
}

TEST(ParseLifecycle, RequiresTracesArray) {
  std::vector<ServerTraceRecord> out;
  std::string error;
  EXPECT_FALSE(ParseLifecycleJson("{}", &out, &error));
  EXPECT_FALSE(ParseLifecycleJson("[]", &out, &error));
}

}  // namespace
}  // namespace psp
