// Lock-free ring tests: single-threaded semantics plus multi-threaded
// stress checking FIFO order (SPSC) and element conservation (MPSC).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "src/common/mpsc_ring.h"
#include "src/common/spsc_ring.h"

namespace psp {
namespace {

TEST(SpscRing, PushPopSingleThread) {
  SpscRing<uint64_t> ring(8);
  uint64_t out = 0;
  EXPECT_FALSE(ring.TryPop(&out));
  EXPECT_TRUE(ring.TryPush(7));
  EXPECT_TRUE(ring.TryPop(&out));
  EXPECT_EQ(out, 7u);
  EXPECT_FALSE(ring.TryPop(&out));
}

TEST(SpscRing, FillsToCapacityThenRejects) {
  SpscRing<uint64_t> ring(4);
  for (uint64_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(ring.TryPush(i));
  }
  EXPECT_FALSE(ring.TryPush(99));
  uint64_t out;
  EXPECT_TRUE(ring.TryPop(&out));
  EXPECT_EQ(out, 0u);
  EXPECT_TRUE(ring.TryPush(99));  // slot freed
}

TEST(SpscRing, WrapsAroundManyTimes) {
  SpscRing<uint64_t> ring(4);
  uint64_t out;
  for (uint64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(ring.TryPush(i));
    ASSERT_TRUE(ring.TryPop(&out));
    ASSERT_EQ(out, i);
  }
}

TEST(SpscRing, SizeApprox) {
  SpscRing<uint64_t> ring(8);
  EXPECT_TRUE(ring.EmptyApprox());
  ring.TryPush(1);
  ring.TryPush(2);
  EXPECT_EQ(ring.SizeApprox(), 2u);
}

TEST(SpscRing, CrossThreadFifoOrderPreserved) {
  SpscRing<uint64_t> ring(64);
  constexpr uint64_t kCount = 50'000;
  std::thread producer([&] {
    for (uint64_t i = 0; i < kCount; ++i) {
      while (!ring.TryPush(i)) {
        std::this_thread::yield();  // single-core CI machines
      }
    }
  });
  uint64_t expected = 0;
  while (expected < kCount) {
    uint64_t v;
    if (ring.TryPop(&v)) {
      ASSERT_EQ(v, expected);
      ++expected;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
}

TEST(MpscRing, PushPopSingleThread) {
  MpscRing<uint64_t> ring(8);
  uint64_t out;
  EXPECT_FALSE(ring.TryPop(&out));
  EXPECT_TRUE(ring.TryPush(5));
  EXPECT_TRUE(ring.TryPush(6));
  EXPECT_TRUE(ring.TryPop(&out));
  EXPECT_EQ(out, 5u);
  EXPECT_TRUE(ring.TryPop(&out));
  EXPECT_EQ(out, 6u);
}

TEST(MpscRing, RejectsWhenFull) {
  MpscRing<uint64_t> ring(4);
  for (uint64_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(ring.TryPush(i));
  }
  EXPECT_FALSE(ring.TryPush(4));
}

TEST(MpscRing, MultiProducerConservation) {
  MpscRing<uint64_t> ring(1024);
  constexpr int kProducers = 4;
  constexpr uint64_t kPerProducer = 20'000;

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ring, p] {
      for (uint64_t i = 0; i < kPerProducer; ++i) {
        const uint64_t value = (static_cast<uint64_t>(p) << 32) | i;
        while (!ring.TryPush(value)) {
          std::this_thread::yield();
        }
      }
    });
  }

  // Single consumer: verify per-producer FIFO and total conservation.
  std::vector<uint64_t> next(kProducers, 0);
  uint64_t popped = 0;
  while (popped < kProducers * kPerProducer) {
    uint64_t v;
    if (!ring.TryPop(&v)) {
      std::this_thread::yield();
      continue;
    }
    const auto producer = static_cast<int>(v >> 32);
    const uint64_t seq = v & 0xFFFFFFFF;
    ASSERT_LT(producer, kProducers);
    ASSERT_EQ(seq, next[producer]) << "per-producer order violated";
    ++next[producer];
    ++popped;
  }
  for (auto& t : producers) {
    t.join();
  }
  uint64_t leftover;
  EXPECT_FALSE(ring.TryPop(&leftover));
}

}  // namespace
}  // namespace psp
