// Lock-free ring tests: single-threaded semantics plus multi-threaded
// stress checking FIFO order (SPSC) and element conservation (MPSC).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "src/common/mpsc_ring.h"
#include "src/common/spsc_ring.h"

namespace psp {
namespace {

TEST(SpscRing, PushPopSingleThread) {
  SpscRing<uint64_t> ring(8);
  uint64_t out = 0;
  EXPECT_FALSE(ring.TryPop(&out));
  EXPECT_TRUE(ring.TryPush(7));
  EXPECT_TRUE(ring.TryPop(&out));
  EXPECT_EQ(out, 7u);
  EXPECT_FALSE(ring.TryPop(&out));
}

TEST(SpscRing, FillsToCapacityThenRejects) {
  SpscRing<uint64_t> ring(4);
  for (uint64_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(ring.TryPush(i));
  }
  EXPECT_FALSE(ring.TryPush(99));
  uint64_t out;
  EXPECT_TRUE(ring.TryPop(&out));
  EXPECT_EQ(out, 0u);
  EXPECT_TRUE(ring.TryPush(99));  // slot freed
}

TEST(SpscRing, WrapsAroundManyTimes) {
  SpscRing<uint64_t> ring(4);
  uint64_t out;
  for (uint64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(ring.TryPush(i));
    ASSERT_TRUE(ring.TryPop(&out));
    ASSERT_EQ(out, i);
  }
}

TEST(SpscRing, SizeApprox) {
  SpscRing<uint64_t> ring(8);
  EXPECT_TRUE(ring.EmptyApprox());
  ring.TryPush(1);
  ring.TryPush(2);
  EXPECT_EQ(ring.SizeApprox(), 2u);
}

TEST(SpscRing, CrossThreadFifoOrderPreserved) {
  SpscRing<uint64_t> ring(64);
  constexpr uint64_t kCount = 50'000;
  std::thread producer([&] {
    for (uint64_t i = 0; i < kCount; ++i) {
      while (!ring.TryPush(i)) {
        std::this_thread::yield();  // single-core CI machines
      }
    }
  });
  uint64_t expected = 0;
  while (expected < kCount) {
    uint64_t v;
    if (ring.TryPop(&v)) {
      ASSERT_EQ(v, expected);
      ++expected;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
}

TEST(SpscRing, BurstPushPopRoundTrip) {
  SpscRing<uint64_t> ring(8);
  const uint64_t in[5] = {10, 11, 12, 13, 14};
  EXPECT_EQ(ring.TryPushBurst(in, 5), 5u);
  EXPECT_EQ(ring.SizeApprox(), 5u);
  uint64_t out[8] = {};
  EXPECT_EQ(ring.TryPopBurst(out, 8), 5u);  // partial drain: only 5 present
  for (uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(out[i], 10 + i);
  }
  EXPECT_EQ(ring.TryPopBurst(out, 8), 0u);  // now empty
}

TEST(SpscRing, BurstPushPartialWhenNearlyFull) {
  SpscRing<uint64_t> ring(4);
  const uint64_t in[4] = {1, 2, 3, 4};
  EXPECT_EQ(ring.TryPushBurst(in, 3), 3u);
  EXPECT_EQ(ring.TryPushBurst(in, 4), 1u);  // one slot left
  EXPECT_EQ(ring.TryPushBurst(in, 1), 0u);  // full
  uint64_t out[4];
  EXPECT_EQ(ring.TryPopBurst(out, 4), 4u);
  EXPECT_EQ(out[0], 1u);
  EXPECT_EQ(out[3], 1u);  // the partial push re-started from in[0]
}

TEST(SpscRing, BurstWrapsAcrossRingBoundary) {
  SpscRing<uint64_t> ring(8);
  uint64_t out[8];
  // Advance indices so a burst straddles the physical end of the array.
  for (uint64_t i = 0; i < 6; ++i) {
    ASSERT_TRUE(ring.TryPush(i));
    ASSERT_TRUE(ring.TryPop(&out[0]));
  }
  const uint64_t in[6] = {20, 21, 22, 23, 24, 25};
  EXPECT_EQ(ring.TryPushBurst(in, 6), 6u);
  EXPECT_EQ(ring.TryPopBurst(out, 6), 6u);
  for (uint64_t i = 0; i < 6; ++i) {
    EXPECT_EQ(out[i], 20 + i);
  }
}

TEST(SpscRing, BurstAndSingleOpsInterleaveFifo) {
  SpscRing<uint64_t> ring(16);
  const uint64_t burst[3] = {1, 2, 3};
  EXPECT_TRUE(ring.TryPush(0));
  EXPECT_EQ(ring.TryPushBurst(burst, 3), 3u);
  EXPECT_TRUE(ring.TryPush(4));
  uint64_t out[8];
  EXPECT_EQ(ring.TryPopBurst(out, 2), 2u);
  EXPECT_EQ(out[0], 0u);
  EXPECT_EQ(out[1], 1u);
  uint64_t v;
  EXPECT_TRUE(ring.TryPop(&v));
  EXPECT_EQ(v, 2u);
  EXPECT_EQ(ring.TryPopBurst(out, 8), 2u);
  EXPECT_EQ(out[0], 3u);
  EXPECT_EQ(out[1], 4u);
}

TEST(SpscRing, CrossThreadBurstFifoOrderPreserved) {
  SpscRing<uint64_t> ring(64);
  constexpr uint64_t kCount = 50'000;
  constexpr size_t kBurst = 8;
  std::thread producer([&] {
    uint64_t batch[kBurst];
    uint64_t next = 0;
    while (next < kCount) {
      size_t n = 0;
      while (n < kBurst && next + n < kCount) {
        batch[n] = next + n;
        ++n;
      }
      size_t pushed = 0;
      while (pushed < n) {
        pushed += ring.TryPushBurst(batch + pushed, n - pushed);
        if (pushed < n) {
          std::this_thread::yield();
        }
      }
      next += n;
    }
  });
  uint64_t expected = 0;
  uint64_t out[kBurst];
  while (expected < kCount) {
    const size_t n = ring.TryPopBurst(out, kBurst);
    if (n == 0) {
      std::this_thread::yield();
      continue;
    }
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(out[i], expected);
      ++expected;
    }
  }
  producer.join();
}

TEST(MpscRing, PushPopSingleThread) {
  MpscRing<uint64_t> ring(8);
  uint64_t out;
  EXPECT_FALSE(ring.TryPop(&out));
  EXPECT_TRUE(ring.TryPush(5));
  EXPECT_TRUE(ring.TryPush(6));
  EXPECT_TRUE(ring.TryPop(&out));
  EXPECT_EQ(out, 5u);
  EXPECT_TRUE(ring.TryPop(&out));
  EXPECT_EQ(out, 6u);
}

TEST(MpscRing, RejectsWhenFull) {
  MpscRing<uint64_t> ring(4);
  for (uint64_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(ring.TryPush(i));
  }
  EXPECT_FALSE(ring.TryPush(4));
}

TEST(MpscRing, MultiProducerConservation) {
  MpscRing<uint64_t> ring(1024);
  constexpr int kProducers = 4;
  constexpr uint64_t kPerProducer = 20'000;

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ring, p] {
      for (uint64_t i = 0; i < kPerProducer; ++i) {
        const uint64_t value = (static_cast<uint64_t>(p) << 32) | i;
        while (!ring.TryPush(value)) {
          std::this_thread::yield();
        }
      }
    });
  }

  // Single consumer: verify per-producer FIFO and total conservation.
  std::vector<uint64_t> next(kProducers, 0);
  uint64_t popped = 0;
  while (popped < kProducers * kPerProducer) {
    uint64_t v;
    if (!ring.TryPop(&v)) {
      std::this_thread::yield();
      continue;
    }
    const auto producer = static_cast<int>(v >> 32);
    const uint64_t seq = v & 0xFFFFFFFF;
    ASSERT_LT(producer, kProducers);
    ASSERT_EQ(seq, next[producer]) << "per-producer order violated";
    ++next[producer];
    ++popped;
  }
  for (auto& t : producers) {
    t.join();
  }
  uint64_t leftover;
  EXPECT_FALSE(ring.TryPop(&leftover));
}

TEST(MpscRing, BurstPushPopRoundTrip) {
  MpscRing<uint64_t> ring(8);
  const uint64_t in[5] = {30, 31, 32, 33, 34};
  EXPECT_EQ(ring.TryPushBurst(in, 5), 5u);
  uint64_t out[8] = {};
  EXPECT_EQ(ring.TryPopBurst(out, 8), 5u);
  for (uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(out[i], 30 + i);
  }
  EXPECT_EQ(ring.TryPopBurst(out, 8), 0u);
}

TEST(MpscRing, BurstPushPartialThenRejects) {
  MpscRing<uint64_t> ring(4);
  const uint64_t in[4] = {1, 2, 3, 4};
  EXPECT_EQ(ring.TryPushBurst(in, 4), 4u);
  EXPECT_EQ(ring.TryPushBurst(in, 2), 0u);  // full
  uint64_t out[2];
  EXPECT_EQ(ring.TryPopBurst(out, 2), 2u);
  EXPECT_EQ(ring.TryPushBurst(in, 4), 2u);  // only two cells free
}

TEST(MpscRing, BurstInteroperatesWithSingleOps) {
  MpscRing<uint64_t> ring(8);
  const uint64_t burst[3] = {1, 2, 3};
  EXPECT_TRUE(ring.TryPush(0));
  EXPECT_EQ(ring.TryPushBurst(burst, 3), 3u);
  EXPECT_TRUE(ring.TryPush(4));
  uint64_t v;
  EXPECT_TRUE(ring.TryPop(&v));
  EXPECT_EQ(v, 0u);
  uint64_t out[8];
  EXPECT_EQ(ring.TryPopBurst(out, 8), 4u);
  for (uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(out[i], 1 + i);
  }
}

TEST(MpscRing, MultiProducerBurstConservation) {
  MpscRing<uint64_t> ring(256);
  constexpr int kProducers = 4;
  constexpr uint64_t kPerProducer = 20'000;
  constexpr size_t kBurst = 8;

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ring, p] {
      uint64_t batch[kBurst];
      uint64_t next = 0;
      while (next < kPerProducer) {
        size_t n = 0;
        while (n < kBurst && next + n < kPerProducer) {
          batch[n] = (static_cast<uint64_t>(p) << 32) | (next + n);
          ++n;
        }
        size_t pushed = 0;
        while (pushed < n) {
          pushed += ring.TryPushBurst(batch + pushed, n - pushed);
          if (pushed < n) {
            std::this_thread::yield();
          }
        }
        next += n;
      }
    });
  }

  // Single consumer draining in bursts: per-producer FIFO must hold because
  // each producer's burst claims a contiguous range of cells.
  std::vector<uint64_t> next(kProducers, 0);
  uint64_t popped = 0;
  uint64_t out[kBurst];
  while (popped < kProducers * kPerProducer) {
    const size_t n = ring.TryPopBurst(out, kBurst);
    if (n == 0) {
      std::this_thread::yield();
      continue;
    }
    for (size_t i = 0; i < n; ++i) {
      const auto producer = static_cast<int>(out[i] >> 32);
      const uint64_t seq = out[i] & 0xFFFFFFFF;
      ASSERT_LT(producer, kProducers);
      ASSERT_EQ(seq, next[producer]) << "per-producer order violated";
      ++next[producer];
      ++popped;
    }
  }
  for (auto& t : producers) {
    t.join();
  }
  uint64_t leftover;
  EXPECT_FALSE(ring.TryPop(&leftover));
}

}  // namespace
}  // namespace psp
