// Buffer pool tests: ownership, conservation across caches and threads,
// exhaustion behaviour.
#include "src/common/memory_pool.h"

#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

namespace psp {
namespace {

TEST(MemoryPool, RoundsBufferCountToPowerOfTwo) {
  MemoryPool pool(100, 100);
  EXPECT_EQ(pool.num_buffers(), 128u);
  EXPECT_EQ(pool.buffer_size() % 64, 0u);  // cache-line multiple
}

TEST(MemoryPool, GlobalAllocFreeRoundTrip) {
  MemoryPool pool(256, 16);
  std::byte* buf = pool.AllocGlobal();
  ASSERT_NE(buf, nullptr);
  EXPECT_TRUE(pool.Owns(buf));
  pool.FreeGlobal(buf);
  EXPECT_EQ(pool.AvailableApprox(), pool.num_buffers());
}

TEST(MemoryPool, ExhaustionReturnsNull) {
  MemoryPool pool(64, 4);
  std::vector<std::byte*> held;
  for (size_t i = 0; i < pool.num_buffers(); ++i) {
    std::byte* buf = pool.AllocGlobal();
    ASSERT_NE(buf, nullptr);
    held.push_back(buf);
  }
  EXPECT_EQ(pool.AllocGlobal(), nullptr);
  pool.FreeGlobal(held.back());
  EXPECT_NE(pool.AllocGlobal(), nullptr);
}

TEST(MemoryPool, BuffersAreDistinctAndAligned) {
  MemoryPool pool(128, 8);
  std::set<std::byte*> seen;
  for (size_t i = 0; i < pool.num_buffers(); ++i) {
    std::byte* buf = pool.AllocGlobal();
    ASSERT_NE(buf, nullptr);
    EXPECT_TRUE(seen.insert(buf).second) << "duplicate buffer";
    EXPECT_EQ(reinterpret_cast<uintptr_t>(buf) % 64, 0u);
  }
}

TEST(MemoryPool, OwnsRejectsForeignAndMisalignedPointers) {
  MemoryPool pool(128, 8);
  std::byte outside;
  EXPECT_FALSE(pool.Owns(&outside));
  std::byte* buf = pool.AllocGlobal();
  EXPECT_FALSE(pool.Owns(buf + 1));  // interior pointer
  pool.FreeGlobal(buf);
}

TEST(BufferCache, AllocFreeThroughCache) {
  MemoryPool pool(128, 64);
  BufferCache cache(&pool, 8);
  std::byte* a = cache.Alloc();
  std::byte* b = cache.Alloc();
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a, b);
  cache.Free(a);
  cache.Free(b);
  cache.FlushAll();
  EXPECT_EQ(pool.AvailableApprox(), pool.num_buffers());
}

TEST(BufferCache, RefillsInBatches) {
  MemoryPool pool(128, 64);
  BufferCache cache(&pool, 8);
  (void)cache.Alloc();
  // One refill of 8 pulled from the pool; 7 remain cached.
  EXPECT_EQ(cache.CachedCount(), 7u);
  EXPECT_EQ(pool.AvailableApprox(), pool.num_buffers() - 8);
}

TEST(BufferCache, FlushesWhenOverfull) {
  MemoryPool pool(128, 128);
  BufferCache cache(&pool, 4);
  std::vector<std::byte*> bufs;
  for (int i = 0; i < 16; ++i) {
    bufs.push_back(cache.Alloc());
  }
  for (auto* b : bufs) {
    cache.Free(b);
  }
  // Cache flushed excess back: it never retains more than 2×batch.
  EXPECT_LE(cache.CachedCount(), 8u);
}

TEST(BufferCache, DestructorReturnsEverything) {
  MemoryPool pool(128, 32);
  {
    BufferCache cache(&pool, 8);
    for (int i = 0; i < 5; ++i) {
      std::byte* b = cache.Alloc();
      ASSERT_NE(b, nullptr);
      cache.Free(b);
    }
  }
  EXPECT_EQ(pool.AvailableApprox(), pool.num_buffers());
}

TEST(BufferCache, ConservationAcrossThreads) {
  // Workers alloc/free through private caches concurrently; afterwards every
  // buffer must be back (the paper's workers release buffers after TX).
  MemoryPool pool(256, 1024);
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool] {
      BufferCache cache(&pool, 16);
      std::vector<std::byte*> held;
      for (int round = 0; round < 5'000; ++round) {
        if ((round & 3) != 3) {
          std::byte* b = cache.Alloc();
          if (b != nullptr) {
            held.push_back(b);
          }
        } else if (!held.empty()) {
          cache.Free(held.back());
          held.pop_back();
        }
      }
      for (auto* b : held) {
        cache.Free(b);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(pool.AvailableApprox(), pool.num_buffers());
}

}  // namespace
}  // namespace psp
