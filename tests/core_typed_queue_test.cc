// Typed-queue tests: FIFO order, wraparound, bounded drops, head delay.
#include "src/core/typed_queue.h"

#include <gtest/gtest.h>

namespace psp {
namespace {

Request Req(uint64_t id, Nanos arrival = 0) {
  Request r;
  r.id = id;
  r.type = 1;
  r.arrival = arrival;
  return r;
}

TEST(TypedQueue, FifoOrder) {
  TypedQueue q(8);
  q.Push(Req(1));
  q.Push(Req(2));
  q.Push(Req(3));
  Request out;
  ASSERT_TRUE(q.Pop(&out));
  EXPECT_EQ(out.id, 1u);
  ASSERT_TRUE(q.Pop(&out));
  EXPECT_EQ(out.id, 2u);
  ASSERT_TRUE(q.Pop(&out));
  EXPECT_EQ(out.id, 3u);
  EXPECT_FALSE(q.Pop(&out));
}

TEST(TypedQueue, DropsWhenFull) {
  TypedQueue q(2);
  EXPECT_TRUE(q.Push(Req(1)));
  EXPECT_TRUE(q.Push(Req(2)));
  EXPECT_FALSE(q.Push(Req(3)));
  EXPECT_EQ(q.drops(), 1u);
  EXPECT_EQ(q.Size(), 2u);
}

TEST(TypedQueue, WrapsAroundRepeatedly) {
  TypedQueue q(4);
  Request out;
  for (uint64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(q.Push(Req(i)));
    ASSERT_TRUE(q.Pop(&out));
    ASSERT_EQ(out.id, i);
  }
  EXPECT_TRUE(q.Empty());
}

TEST(TypedQueue, PushFrontBeatsFifo) {
  TypedQueue q(8);
  q.Push(Req(1));
  q.Push(Req(2));
  q.PushFront(Req(99));  // preempted request re-enters at the head
  Request out;
  ASSERT_TRUE(q.Pop(&out));
  EXPECT_EQ(out.id, 99u);
  ASSERT_TRUE(q.Pop(&out));
  EXPECT_EQ(out.id, 1u);
}

TEST(TypedQueue, PushFrontOnFullDrops) {
  TypedQueue q(1);
  q.Push(Req(1));
  EXPECT_FALSE(q.PushFront(Req(2)));
  EXPECT_EQ(q.drops(), 1u);
}

TEST(TypedQueue, FrontPeeksWithoutRemoving) {
  TypedQueue q(4);
  q.Push(Req(7));
  EXPECT_EQ(q.Front().id, 7u);
  EXPECT_EQ(q.Size(), 1u);
}

TEST(TypedQueue, HeadDelay) {
  TypedQueue q(4);
  EXPECT_EQ(q.HeadDelay(1000), 0);
  q.Push(Req(1, 200));
  q.Push(Req(2, 900));
  EXPECT_EQ(q.HeadDelay(1000), 800);  // oldest request waited 800ns
  Request out;
  q.Pop(&out);
  EXPECT_EQ(q.HeadDelay(1000), 100);
}

TEST(TypedQueue, MixedFrontBackWrapAround) {
  TypedQueue q(4);
  q.Push(Req(1));
  q.Push(Req(2));
  Request out;
  q.Pop(&out);  // head advanced
  q.PushFront(Req(3));
  q.Push(Req(4));
  // Order: 3, 2, 4.
  q.Pop(&out);
  EXPECT_EQ(out.id, 3u);
  q.Pop(&out);
  EXPECT_EQ(out.id, 2u);
  q.Pop(&out);
  EXPECT_EQ(out.id, 4u);
}

}  // namespace
}  // namespace psp
