// Invariants of the bucketed EDF queue (src/sched/edf_queue.h): pops come
// out in ascending deadline order, same-bucket ties break FIFO (the replay
// goldens rely on that determinism), edge deadlines (late / far-future /
// none) clamp deterministically, capacity drops are counted, and the cursor
// re-anchors across idle gaps.
#include "src/sched/edf_queue.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace psp {
namespace {

// Engines stamp deadline = arrival + budget, so arrival <= deadline always
// holds in real use; the empty-ring cursor re-anchor keys off the arrival.
Request Req(uint64_t id, Nanos deadline, Nanos arrival = 1) {
  Request r;
  r.id = id;
  r.arrival = arrival;
  r.deadline = deadline;
  return r;
}

TEST(EdfQueue, PopsInAscendingDeadlineOrder) {
  EdfQueue q;
  // Deliberately shuffled pushes, deadlines one bucket (~1 µs) apart so each
  // lands in its own bucket.
  const std::vector<Nanos> deadlines = {50'000, 10'000, 90'000, 30'000,
                                        70'000, 20'000, 80'000, 40'000};
  for (size_t i = 0; i < deadlines.size(); ++i) {
    ASSERT_TRUE(q.Push(Req(i, deadlines[i])));
  }
  EXPECT_EQ(q.Size(), deadlines.size());

  std::vector<Nanos> sorted = deadlines;
  std::sort(sorted.begin(), sorted.end());
  for (const Nanos expected : sorted) {
    Request out;
    ASSERT_TRUE(q.PopEarliest(&out));
    EXPECT_EQ(out.deadline, expected);
  }
  EXPECT_TRUE(q.Empty());
  Request out;
  EXPECT_FALSE(q.PopEarliest(&out));
}

TEST(EdfQueue, SameBucketTiesBreakFifo) {
  EdfQueue q;
  // Identical deadlines land in one bucket; pop order must be push order.
  const Nanos deadline = 64'000;
  for (uint64_t id = 0; id < 5; ++id) {
    ASSERT_TRUE(q.Push(Req(id, deadline)));
  }
  for (uint64_t id = 0; id < 5; ++id) {
    Request out;
    ASSERT_TRUE(q.PopEarliest(&out));
    EXPECT_EQ(out.id, id);
  }
}

TEST(EdfQueue, PeekMatchesPopWithoutConsuming) {
  EdfQueue q;
  ASSERT_TRUE(q.Push(Req(1, 40'000)));
  ASSERT_TRUE(q.Push(Req(2, 20'000)));
  Request peeked;
  ASSERT_TRUE(q.PeekEarliest(&peeked));
  EXPECT_EQ(peeked.id, 2u);
  EXPECT_EQ(q.Size(), 2u);
  Request popped;
  ASSERT_TRUE(q.PopEarliest(&popped));
  EXPECT_EQ(popped.id, peeked.id);
  EXPECT_EQ(q.Size(), 1u);
}

TEST(EdfQueue, LateDeadlinesClampToCursorAndDrainFirst) {
  EdfQueue q;
  // Anchor the window well past 5 µs: the empty-ring push re-anchors the
  // cursor at its arrival (120 µs).
  ASSERT_TRUE(q.Push(Req(2, 150'000, /*arrival=*/120'000)));
  // This deadline sits behind the cursor (already late) — it clamps to the
  // cursor bucket and therefore pops before the 150 µs entry.
  ASSERT_TRUE(q.Push(Req(3, 5'000, /*arrival=*/125'000)));
  Request out;
  ASSERT_TRUE(q.PopEarliest(&out));
  EXPECT_EQ(out.id, 3u);
  ASSERT_TRUE(q.PopEarliest(&out));
  EXPECT_EQ(out.id, 2u);
}

TEST(EdfQueue, ZeroDeadlineParksAtHorizonBehindAllDeadlinedWork) {
  EdfQueue q;
  ASSERT_TRUE(q.Push(Req(1, 0)));  // no deadline
  ASSERT_TRUE(q.Push(Req(2, 500'000)));
  ASSERT_TRUE(q.Push(Req(3, 30'000)));
  Request out;
  ASSERT_TRUE(q.PopEarliest(&out));
  EXPECT_EQ(out.id, 3u);
  ASSERT_TRUE(q.PopEarliest(&out));
  EXPECT_EQ(out.id, 2u);
  ASSERT_TRUE(q.PopEarliest(&out));
  EXPECT_EQ(out.id, 1u);
}

TEST(EdfQueue, FarFutureDeadlinesClampToHorizonBucket) {
  EdfQueue q;
  const Nanos horizon = q.bucket_width() * EdfQueue::kBuckets;
  ASSERT_TRUE(q.Push(Req(1, 10 * horizon)));  // far beyond the ring window
  ASSERT_TRUE(q.Push(Req(2, 20 * horizon)));  // even further: same bucket
  ASSERT_TRUE(q.Push(Req(3, 10'000)));        // precise, near
  Request out;
  ASSERT_TRUE(q.PopEarliest(&out));
  EXPECT_EQ(out.id, 3u);
  // Beyond the horizon the order is approximate by design: FIFO within the
  // shared horizon bucket.
  ASSERT_TRUE(q.PopEarliest(&out));
  EXPECT_EQ(out.id, 1u);
  ASSERT_TRUE(q.PopEarliest(&out));
  EXPECT_EQ(out.id, 2u);
}

TEST(EdfQueue, CapacityDropsAreCountedAndRefused) {
  EdfQueue q(/*capacity=*/2);
  ASSERT_TRUE(q.Push(Req(1, 10'000)));
  ASSERT_TRUE(q.Push(Req(2, 20'000)));
  EXPECT_FALSE(q.Push(Req(3, 30'000)));
  EXPECT_EQ(q.drops(), 1u);
  EXPECT_EQ(q.Size(), 2u);
  // Draining frees capacity again.
  Request out;
  ASSERT_TRUE(q.PopEarliest(&out));
  EXPECT_TRUE(q.Push(Req(4, 40'000)));
  EXPECT_EQ(q.drops(), 1u);
}

TEST(EdfQueue, CursorReanchorsAcrossIdleGaps) {
  EdfQueue q;
  const Nanos horizon = q.bucket_width() * EdfQueue::kBuckets;
  // Drain an early era completely, then push deadlines far past the old ring
  // window. Without re-anchoring they'd all clamp to the horizon bucket and
  // lose their relative order.
  ASSERT_TRUE(q.Push(Req(1, 10'000)));
  Request out;
  ASSERT_TRUE(q.PopEarliest(&out));
  ASSERT_TRUE(q.Empty());
  const Nanos era = 5 * horizon;
  ASSERT_TRUE(q.Push(Req(2, era + 200'000, /*arrival=*/era)));
  ASSERT_TRUE(q.Push(Req(3, era + 100'000, /*arrival=*/era + 1'000)));
  ASSERT_TRUE(q.PopEarliest(&out));
  EXPECT_EQ(out.id, 3u);
  ASSERT_TRUE(q.PopEarliest(&out));
  EXPECT_EQ(out.id, 2u);
}

TEST(EdfQueue, InterleavedPushPopKeepsGlobalOrder) {
  EdfQueue q;
  ASSERT_TRUE(q.Push(Req(1, 40'000)));
  ASSERT_TRUE(q.Push(Req(2, 80'000)));
  Request out;
  ASSERT_TRUE(q.PopEarliest(&out));
  EXPECT_EQ(out.id, 1u);
  // A new earlier-than-head deadline (but still >= cursor) goes first.
  ASSERT_TRUE(q.Push(Req(3, 60'000)));
  ASSERT_TRUE(q.PopEarliest(&out));
  EXPECT_EQ(out.id, 3u);
  ASSERT_TRUE(q.PopEarliest(&out));
  EXPECT_EQ(out.id, 2u);
}

}  // namespace
}  // namespace psp
