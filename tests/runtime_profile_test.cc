// Sampling profiler on the live threaded runtime: timers arm/disarm cleanly
// under load (this test is part of the TSan tier — scripts/check.sh thread),
// folded output keeps its grammar stable for flamegraph tooling, and every
// sample carries a ledger-state tag.
#include "src/profile/sampler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "src/apps/synthetic.h"
#include "src/runtime/loadgen.h"
#include "src/runtime/persephone.h"
#include "src/telemetry/timeledger.h"

namespace psp {
namespace {

RuntimeConfig SmallRuntime() {
  RuntimeConfig config;
  config.num_workers = 2;
  config.pool_buffers = 1024;
  return config;
}

// Splits folded output into (stack, count) lines; fails the test on any line
// that does not match `key SPACE digits`.
std::vector<std::pair<std::string, uint64_t>> ParseFolded(
    const std::string& folded) {
  std::vector<std::pair<std::string, uint64_t>> lines;
  size_t pos = 0;
  while (pos < folded.size()) {
    size_t eol = folded.find('\n', pos);
    if (eol == std::string::npos) {
      eol = folded.size();
    }
    const std::string line = folded.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) {
      continue;
    }
    const size_t space = line.rfind(' ');
    EXPECT_NE(space, std::string::npos) << "no count in: " << line;
    if (space == std::string::npos) {
      continue;
    }
    const std::string key = line.substr(0, space);
    const std::string count = line.substr(space + 1);
    EXPECT_FALSE(key.empty()) << line;
    EXPECT_FALSE(count.empty()) << line;
    for (const char c : count) {
      EXPECT_TRUE(std::isdigit(static_cast<unsigned char>(c)))
          << "non-numeric count in: " << line;
    }
    // No stray separators: the key is semicolon-delimited tokens only.
    EXPECT_EQ(key.find(' '), std::string::npos) << line;
    lines.emplace_back(key, std::strtoull(count.c_str(), nullptr, 10));
  }
  return lines;
}

TEST(Profile, StartStopLifecycleAndDoubleStartRejected) {
  CpuSampler sampler;
  EXPECT_FALSE(sampler.running());
  EXPECT_FALSE(sampler.Stop());  // nothing running
  ASSERT_TRUE(sampler.Start(99));
  EXPECT_TRUE(sampler.running());
  EXPECT_EQ(sampler.hz(), 99);
  // Second Start is the admin plane's 409: refused, no side effects.
  EXPECT_FALSE(sampler.Start(200));
  EXPECT_EQ(sampler.hz(), 99);
  EXPECT_TRUE(sampler.Stop());
  EXPECT_FALSE(sampler.running());
  EXPECT_FALSE(sampler.Stop());
}

TEST(Profile, DurationAutoStops) {
  CpuSampler sampler;
  ASSERT_TRUE(sampler.Start(99, /*duration_sec=*/0.2));
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (sampler.running() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_FALSE(sampler.running());
  // A fresh capture can start after the auto-stop.
  ASSERT_TRUE(sampler.Start(99));
  EXPECT_TRUE(sampler.Stop());
}

TEST(Profile, SamplesBusyThreadWithStateTags) {
  CpuSampler sampler;
  std::atomic<uint32_t> state{WorkerTimeLedger::Pack(WorkerTimeState::kBusy,
                                                     /*type=*/1)};
  std::atomic<bool> stop{false};
  std::thread burner([&] {
    sampler.RegisterCurrentThread("worker", &state, 0);
    // Busy-spin: a CPU-time timer at 997 Hz fires steadily on this thread.
    volatile uint64_t sink = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      for (int i = 0; i < 4096; ++i) {
        sink = sink + static_cast<uint64_t>(i) * 2654435761u;
      }
    }
    sampler.UnregisterCurrentThread();
  });

  ASSERT_TRUE(sampler.Start(997));
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  ASSERT_TRUE(sampler.Stop());
  stop.store(true);
  burner.join();

  EXPECT_GT(sampler.total_samples(), 10u);
  const std::string folded = sampler.Folded(
      [](uint32_t type) { return "TYPE" + std::to_string(type); });
  const auto lines = ParseFolded(folded);
  ASSERT_FALSE(lines.empty());
  uint64_t tagged = 0;
  uint64_t total = 0;
  for (const auto& [key, count] : lines) {
    total += count;
    // Grammar: role;state:<name>[;type:<NAME>][;frame;frame;...]
    EXPECT_EQ(key.compare(0, 7, "worker;"), 0) << key;
    if (key.find(";state:busy;type:TYPE1") != std::string::npos) {
      tagged += count;
    }
  }
  // Aggregated counts cover exactly the published samples, and every sample
  // carries the ledger tag that the state word held (≥ 99% acceptance bar;
  // here the word never changed, so it is all of them).
  EXPECT_EQ(total, sampler.total_samples());
  EXPECT_GE(tagged * 100, total * 99);
}

TEST(Profile, RuntimeUnderLoadProducesLedgerTaggedStacks) {
  Persephone server(SmallRuntime());
  server.RegisterType(1, "SHORT", MakeSpinHandler(), FromMicros(2), 0.9);
  server.RegisterType(2, "LONG", MakeSpinHandler(), FromMicros(50), 0.1);
  server.Start();

  ASSERT_TRUE(server.cpu_sampler().Start(997));
  LoadGenConfig lg;
  lg.rate_rps = 3000;
  lg.total_requests = 1200;
  LoadGenerator gen(&server,
                    {MakeSpinSpec(1, "SHORT", 0.9, FromMicros(2)),
                     MakeSpinSpec(2, "LONG", 0.1, FromMicros(50))},
                    lg);
  gen.Run();
  ASSERT_TRUE(server.cpu_sampler().Stop());
  const std::string folded = server.cpu_sampler().Folded(
      [&](uint32_t type) { return std::string("T") + std::to_string(type); });
  server.Stop();

  // Dispatcher + workers busy-poll, so CPU-time timers must have fired.
  EXPECT_GT(server.cpu_sampler().total_samples(), 0u);
  const auto lines = ParseFolded(folded);
  ASSERT_FALSE(lines.empty());
  uint64_t total = 0;
  uint64_t state_tagged = 0;
  bool saw_dispatcher = false;
  for (const auto& [key, count] : lines) {
    total += count;
    const size_t role_end = key.find(';');
    ASSERT_NE(role_end, std::string::npos) << key;
    const std::string role = key.substr(0, role_end);
    EXPECT_TRUE(role == "worker" || role == "dispatcher" || role == "net" ||
                role == "sampler")
        << key;
    saw_dispatcher |= role == "dispatcher";
    if (key.compare(role_end, 7, ";state:") == 0) {
      state_tagged += count;
    }
  }
  // The acceptance bar: ledger-state tags partition ≥ 99% of samples (by
  // construction every registered thread has a state word or fallback).
  EXPECT_GE(state_tagged * 100, total * 99);
  EXPECT_TRUE(saw_dispatcher);
}

TEST(Profile, RepeatedCapturesUnderLoadAreClean) {
  // Start/stop churn while the runtime is hot: the TSan-tier stress for the
  // signal path, buffer reset, and watcher interleavings.
  Persephone server(SmallRuntime());
  server.RegisterType(1, "T", MakeSpinHandler(), FromMicros(5), 1.0);
  server.Start();

  std::atomic<bool> done{false};
  std::thread load([&] {
    LoadGenConfig lg;
    lg.rate_rps = 4000;
    lg.total_requests = 2000;
    LoadGenerator gen(&server, {MakeSpinSpec(1, "T", 1.0, FromMicros(5))}, lg);
    gen.Run();
    done.store(true);
  });
  int captures = 0;
  while (!done.load() && captures < 50) {
    if (server.cpu_sampler().Start(499)) {
      ++captures;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      server.cpu_sampler().Stop();
      // Folded render interleaved with the next capture cycle.
      server.cpu_sampler().Folded(nullptr);
    }
  }
  load.join();
  server.Stop();
  EXPECT_GT(captures, 0);
}

}  // namespace
}  // namespace psp
