// IngressSource seam: PollController pacing semantics, plus a conformance
// harness run against all three IngressSource implementations (in-process
// ring, simulated-NIC poll, kernel UDP sockets) so they stay interchangeable
// behind the dispatcher.
#include <arpa/inet.h>
#include <atomic>
#include <cstring>
#include <netinet/in.h>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/memory_pool.h"
#include "src/net/ingress.h"
#include "src/net/nic.h"
#include "src/net/packet.h"
#include "src/net/poll_control.h"
#include "src/net/udp_ingress.h"

namespace psp {
namespace {

// --- PollController ---------------------------------------------------------

TEST(PollControl, BusyAndYieldNeverSleep) {
  for (const PollPolicy policy : {PollPolicy::kBusy, PollPolicy::kYield}) {
    PollControlConfig config;
    config.policy = policy;
    PollController controller(config);
    for (int i = 0; i < 1000; ++i) {
      controller.OnIdle();
    }
    EXPECT_EQ(controller.sleeps(), 0u);
    EXPECT_EQ(controller.slept_nanos(), 0);
  }
}

TEST(PollControl, AdaptiveSpinsThroughStreakThenBacksOffToBudget) {
  PollControlConfig config;
  config.policy = PollPolicy::kAdaptive;
  config.idle_streak_before_sleep = 4;
  config.min_sleep = 1 * kMicrosecond;
  config.wakeup_budget = 8 * kMicrosecond;
  PollController controller(config);

  // The first `idle_streak_before_sleep` empty rounds only yield.
  for (uint32_t i = 0; i < config.idle_streak_before_sleep; ++i) {
    controller.OnIdle();
  }
  EXPECT_EQ(controller.sleeps(), 0u);

  // Beyond the streak: sleeps double from min_sleep and cap at the budget.
  controller.OnIdle();
  EXPECT_EQ(controller.sleeps(), 1u);
  EXPECT_EQ(controller.next_sleep(), 2 * kMicrosecond);
  for (int i = 0; i < 10; ++i) {
    controller.OnIdle();
  }
  EXPECT_EQ(controller.next_sleep(), config.wakeup_budget);
  EXPECT_GE(controller.slept_nanos(), config.min_sleep);
}

TEST(PollControl, WorkResetsBackoff) {
  PollControlConfig config;
  config.policy = PollPolicy::kAdaptive;
  config.idle_streak_before_sleep = 1;
  config.min_sleep = 1 * kMicrosecond;
  config.wakeup_budget = 64 * kMicrosecond;
  PollController controller(config);
  for (int i = 0; i < 10; ++i) {
    controller.OnIdle();
  }
  EXPECT_GT(controller.next_sleep(), config.min_sleep);
  controller.OnWork();
  EXPECT_EQ(controller.next_sleep(), 0);
  // After work, the streak starts over: the next empty round only yields.
  const uint64_t sleeps_before = controller.sleeps();
  controller.OnIdle();
  EXPECT_EQ(controller.sleeps(), sleeps_before);
}

TEST(PollControl, ConfigValidation) {
  PollControlConfig config;
  config.policy = PollPolicy::kAdaptive;
  config.min_sleep = 0;
  EXPECT_FALSE(config.Validate().empty());
  config.min_sleep = 10 * kMicrosecond;
  config.wakeup_budget = 5 * kMicrosecond;
  EXPECT_FALSE(config.Validate().empty());
  config.wakeup_budget = 20 * kMicrosecond;
  config.idle_streak_before_sleep = 0;
  EXPECT_FALSE(config.Validate().empty());
  config.idle_streak_before_sleep = 8;
  EXPECT_TRUE(config.Validate().empty());
  // Non-adaptive policies ignore the sleep knobs entirely.
  config.policy = PollPolicy::kYield;
  config.min_sleep = 0;
  EXPECT_TRUE(config.Validate().empty());
}

// --- IngressConfig validation ----------------------------------------------

TEST(IngressConfig, RejectsNonsenseCombos) {
  IngressConfig config;  // ring defaults
  EXPECT_TRUE(config.Validate().empty());

  config.num_net_workers = 2;  // ring mode has exactly one net worker
  EXPECT_FALSE(config.Validate().empty());
  config.num_net_workers = 1;
  config.reuseport = true;  // udp-only knob
  EXPECT_FALSE(config.Validate().empty());

  IngressConfig udp;
  udp.mode = IngressMode::kUdp;
  EXPECT_FALSE(udp.Validate().empty());  // listen_port unset
  udp.listen_port = 0;
  EXPECT_TRUE(udp.Validate().empty());
  udp.reuseport = true;  // reuseport with a single worker does nothing
  EXPECT_FALSE(udp.Validate().empty());
  udp.num_net_workers = 2;
  EXPECT_TRUE(udp.Validate().empty());
  udp.reuseport = false;  // several workers need reuseport
  EXPECT_FALSE(udp.Validate().empty());
  udp.reuseport = true;
  udp.dedicated_net_worker = true;  // ring-mode knob
  EXPECT_FALSE(udp.Validate().empty());
}

// --- Conformance harness ----------------------------------------------------
//
// Contract checks shared by every implementation: frames injected by the
// producer come out of PollBurst complete, in order, and in arbitrary chunk
// sizes; an empty source returns 0; IdleHint is callable every round.

void DrainAndCheck(IngressSource* source, MemoryPool* pool, size_t expect_n) {
  std::vector<uint32_t> lengths;
  PacketRef burst[7];  // deliberately not a divisor-friendly width
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (lengths.size() < expect_n &&
         std::chrono::steady_clock::now() < deadline) {
    const size_t n = source->PollBurst(burst, 7);
    if (n == 0) {
      source->IdleHint();
      continue;
    }
    for (size_t i = 0; i < n; ++i) {
      EXPECT_NE(burst[i].data, nullptr);
      lengths.push_back(burst[i].length);
      pool->FreeGlobal(burst[i].data);
    }
  }
  ASSERT_EQ(lengths.size(), expect_n) << "source: " << source->Name();
  // Frames were injected with length = kHeadersSize + kPspHeader + i, so
  // arrival order is observable.
  for (size_t i = 0; i < lengths.size(); ++i) {
    EXPECT_EQ(lengths[i],
              kHeadersSize + sizeof(PspHeader) + i)
        << "source: " << source->Name() << " frame " << i;
  }
  // Quiescent source keeps returning 0.
  EXPECT_EQ(source->PollBurst(burst, 7), 0u);
}

// Builds the i-th conformance frame (payload length i) into a pool buffer.
PacketRef MakeFrame(MemoryPool* pool, size_t i) {
  std::byte* buf = pool->AllocGlobal();
  EXPECT_NE(buf, nullptr);
  std::byte payload[64] = {};
  RequestFrame frame;
  frame.flow = FlowTuple{0x0A000001, 0x0A0000FF, 1234, 6789};
  frame.request_type = 1;
  frame.request_id = i;
  frame.payload = payload;
  frame.payload_length = static_cast<uint32_t>(i);
  const uint32_t len = BuildRequestPacket(frame, buf, pool->buffer_size());
  EXPECT_GT(len, 0u);
  return PacketRef{buf, len};
}

constexpr size_t kConformanceFrames = 40;

TEST(IngressConformance, RingSource) {
  MemoryPool pool(kMaxPacketSize, 128);
  RingIngressSource<PacketRef> source(64, /*yield_on_idle=*/true);
  for (size_t i = 0; i < kConformanceFrames; ++i) {
    ASSERT_TRUE(source.ring().TryPush(MakeFrame(&pool, i)));
  }
  DrainAndCheck(&source, &pool, kConformanceFrames);
}

TEST(IngressConformance, NicSource) {
  MemoryPool pool(kMaxPacketSize, 128);
  SimulatedNic nic(1, 64, &pool);
  NicIngressSource source(&nic, 0, /*yield_on_idle=*/true);
  for (size_t i = 0; i < kConformanceFrames; ++i) {
    ASSERT_TRUE(nic.DeliverToQueue(0, MakeFrame(&pool, i)));
  }
  DrainAndCheck(&source, &pool, kConformanceFrames);
}

TEST(IngressConformance, UdpSource) {
  MemoryPool pool(kMaxPacketSize, 128);
  IngressConfig config;
  config.mode = IngressMode::kUdp;
  config.listen_port = 0;  // ephemeral
  ASSERT_TRUE(config.Validate().empty());
  UdpIngress udp(config, 64, &pool, /*yield_on_idle=*/true);
  ASSERT_EQ(udp.Open(), "");
  ASSERT_GT(udp.port(), 0);

  std::atomic<bool> stop{false};
  std::thread net([&] { udp.RunNetWorker(0, stop); });

  // A real client socket sends the conformance frames as datagrams
  // (PspHeader + payload): what comes out of PollBurst must be full frames
  // with the synthesized headers in front, in send order (one flow, one
  // shard, loopback — ordering holds).
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in dst{};
  dst.sin_family = AF_INET;
  dst.sin_port = htons(udp.port());
  ASSERT_EQ(inet_pton(AF_INET, "127.0.0.1", &dst.sin_addr), 1);
  for (size_t i = 0; i < kConformanceFrames; ++i) {
    std::byte datagram[256] = {};
    PspHeader psp;
    psp.magic = PspHeader::kMagic;
    psp.request_type = 1;
    psp.request_id = i;
    psp.client_id = 0;
    psp.payload_length = static_cast<uint32_t>(i);
    psp.client_timestamp = 0;
    std::memcpy(datagram, &psp, sizeof(psp));
    ASSERT_EQ(::sendto(fd, datagram, sizeof(PspHeader) + i, 0,
                       reinterpret_cast<sockaddr*>(&dst), sizeof(dst)),
              static_cast<ssize_t>(sizeof(PspHeader) + i));
  }
  DrainAndCheck(&udp, &pool, kConformanceFrames);

  // Runts and bad magic are dropped by the net worker (its layer-2-style
  // checks) and counted, with the buffers recycled, not leaked.
  const char junk[4] = {1, 2, 3, 4};
  ASSERT_EQ(::sendto(fd, junk, sizeof(junk), 0,
                     reinterpret_cast<sockaddr*>(&dst), sizeof(dst)),
            static_cast<ssize_t>(sizeof(junk)));
  std::byte bad[sizeof(PspHeader)] = {};  // right size, wrong magic
  ASSERT_EQ(::sendto(fd, bad, sizeof(bad), 0,
                     reinterpret_cast<sockaddr*>(&dst), sizeof(dst)),
            static_cast<ssize_t>(sizeof(bad)));
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (udp.stats().rx_malformed < 2 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  EXPECT_EQ(udp.stats().rx_malformed, 2u);
  PacketRef burst[4];
  EXPECT_EQ(udp.PollBurst(burst, 4), 0u);

  stop.store(true);
  net.join();
  ::close(fd);
  EXPECT_EQ(udp.stats().rx_datagrams, kConformanceFrames);
  // Every buffer the net worker held came back to the pool.
  EXPECT_EQ(pool.AvailableApprox(), pool.num_buffers());
}

// The UDP sink's egress routing: a wrapped + response-formatted frame goes
// back to the address in its (swapped) headers — i.e. the original sender.
TEST(IngressConformance, UdpEgressRoutesBackToClient) {
  MemoryPool pool(kMaxPacketSize, 128);
  IngressConfig config;
  config.mode = IngressMode::kUdp;
  config.listen_port = 0;
  UdpIngress udp(config, 64, &pool, true);
  ASSERT_EQ(udp.Open(), "");

  // Client socket bound to an ephemeral port so the response has a real
  // destination to land on.
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in self{};
  self.sin_family = AF_INET;
  ASSERT_EQ(inet_pton(AF_INET, "127.0.0.1", &self.sin_addr), 1);
  self.sin_port = 0;
  ASSERT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&self), sizeof(self)), 0);
  socklen_t self_len = sizeof(self);
  ASSERT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&self), &self_len),
            0);

  // Build the frame the net worker would have produced for a datagram from
  // that client, then run it through the worker-side TX path.
  std::byte* buf = pool.AllocGlobal();
  PspHeader psp;
  psp.magic = PspHeader::kMagic;
  psp.request_type = 1;
  psp.request_id = 7;
  psp.client_id = 0;
  psp.payload_length = 4;
  psp.client_timestamp = 0;
  std::memcpy(buf + kRequestOffset, &psp, sizeof(psp));
  std::memcpy(buf + kRequestOffset + sizeof(PspHeader), "pong", 4);
  FlowTuple flow;
  flow.src_addr = 0x7F000001;  // the client
  flow.src_port = ntohs(self.sin_port);
  flow.dst_addr = 0x7F000001;
  flow.dst_port = udp.port();
  const uint32_t frame_len =
      WrapDatagramFrame(buf, sizeof(PspHeader) + 4, flow, /*ident=*/0);
  ASSERT_GT(frame_len, 0u);
  const uint32_t response_len = FormatResponseInPlace(buf, 4);
  const PacketRef response{buf, response_len};
  ASSERT_EQ(udp.SendBurst(&response, 1, /*queue=*/1), 1u);
  EXPECT_EQ(udp.stats().tx_datagrams, 1u);
  EXPECT_EQ(pool.AvailableApprox(), pool.num_buffers());  // sink freed it

  std::byte in[256];
  timeval tv{2, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  const ssize_t r = ::recv(fd, in, sizeof(in), 0);
  ASSERT_EQ(r, static_cast<ssize_t>(sizeof(PspHeader) + 4));
  PspHeader echoed;
  std::memcpy(&echoed, in, sizeof(echoed));
  EXPECT_EQ(echoed.magic, PspHeader::kMagic);
  EXPECT_EQ(echoed.request_id, 7u);
  EXPECT_EQ(std::memcmp(in + sizeof(PspHeader), "pong", 4), 0);
  ::close(fd);
}

}  // namespace
}  // namespace psp
