// DES core tests: ordering, FIFO tie-breaking, nested scheduling, and the
// allocation-free engine's arena/heap behavior under adversarial schedules.
#include "src/sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace psp {
namespace {

TEST(Simulation, ExecutesInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.ScheduleAt(30, [&] { order.push_back(3); });
  sim.ScheduleAt(10, [&] { order.push_back(1); });
  sim.ScheduleAt(20, [&] { order.push_back(2); });
  sim.RunToCompletion();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), 30);
  EXPECT_EQ(sim.executed_events(), 3u);
}

TEST(Simulation, SimultaneousEventsRunFifo) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.ScheduleAt(5, [&order, i] { order.push_back(i); });
  }
  sim.RunToCompletion();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

// Self-rescheduling handler: captures are a plain struct (the engine stores
// handlers inline, so they must be trivially copyable — no std::function).
struct Chain {
  Simulation* sim;
  int* fired;

  void operator()() const {
    ++*fired;
    if (*fired < 100) {
      sim->ScheduleAfter(7, Chain{sim, fired});
    }
  }
};

TEST(Simulation, EventsCanScheduleMoreEvents) {
  Simulation sim;
  int fired = 0;
  sim.ScheduleAt(0, Chain{&sim, &fired});
  sim.RunToCompletion();
  EXPECT_EQ(fired, 100);
  EXPECT_EQ(sim.Now(), 99 * 7);
}

TEST(Simulation, RunUntilStopsAtBoundary) {
  Simulation sim;
  int fired = 0;
  sim.ScheduleAt(10, [&] { ++fired; });
  sim.ScheduleAt(20, [&] { ++fired; });
  sim.ScheduleAt(30, [&] { ++fired; });
  sim.RunUntil(20);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.Now(), 20);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.RunToCompletion();
  EXPECT_EQ(fired, 3);
}

TEST(Simulation, RunUntilAdvancesTimeWhenIdle) {
  Simulation sim;
  sim.RunUntil(500);
  EXPECT_EQ(sim.Now(), 500);
}

TEST(Simulation, ScheduleAfterUsesCurrentTime) {
  Simulation sim;
  Nanos seen = -1;
  sim.ScheduleAt(100, [&] {
    sim.ScheduleAfter(50, [&] { seen = sim.Now(); });
  });
  sim.RunToCompletion();
  EXPECT_EQ(seen, 150);
}

// --- Adversarial schedules ---------------------------------------------------

TEST(Simulation, HandlerSchedulingAtNowRunsInSameTick) {
  // A handler that schedules at Now() (zero delay) must see its event run
  // before time advances, after all earlier-scheduled same-tick events.
  Simulation sim;
  std::vector<int> order;
  sim.ScheduleAt(10, [&] {
    order.push_back(1);
    sim.ScheduleAt(sim.Now(), [&] { order.push_back(3); });
  });
  sim.ScheduleAt(10, [&] { order.push_back(2); });
  sim.ScheduleAt(11, [&] { order.push_back(4); });
  sim.RunToCompletion();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(Simulation, RunUntilIncludesEventsAtExactlyUntil) {
  // Boundary contract: an event at exactly `until` runs, including one a
  // handler schedules *at* the boundary mid-run; one at until+1 does not.
  Simulation sim;
  std::vector<int> order;
  sim.ScheduleAt(50, [&] {
    order.push_back(1);
    sim.ScheduleAt(100, [&] { order.push_back(3); });
  });
  sim.ScheduleAt(100, [&] { order.push_back(2); });
  sim.ScheduleAt(101, [&] { order.push_back(4); });
  sim.RunUntil(100);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), 100);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.RunUntil(100);  // idempotent: nothing else is due
  EXPECT_EQ(order.size(), 3u);
  sim.RunToCompletion();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(Simulation, SameTickFifoSurvivesArenaReuse) {
  // Fill and drain the engine repeatedly so arena slots recycle through the
  // free list (in LIFO order), then verify same-tick FIFO still follows the
  // global schedule order, not slot order.
  Simulation sim;
  for (int round = 0; round < 5; ++round) {
    std::vector<int> order;
    const Nanos t = 1000 * (round + 1);
    // Interleave two ticks scheduled out of time order.
    for (int i = 0; i < 8; ++i) {
      sim.ScheduleAt(t + 1, [&order, i] { order.push_back(100 + i); });
      sim.ScheduleAt(t, [&order, i] { order.push_back(i); });
    }
    sim.RunToCompletion();
    ASSERT_EQ(order.size(), 16u);
    for (int i = 0; i < 8; ++i) {
      EXPECT_EQ(order[i], i) << "round " << round;
      EXPECT_EQ(order[8 + i], 100 + i) << "round " << round;
    }
  }
}

TEST(Simulation, SteadyStateDoesNotGrowArena) {
  // After a warmup at peak occupancy, further churn at the same occupancy
  // must recycle slots through the free list without new allocations.
  constexpr int kPending = 256;
  Simulation engine;
  int fired = 0;
  for (int i = 0; i < kPending; ++i) {
    engine.ScheduleAt(10 + i, [&engine, &fired] {
      ++fired;
      engine.ScheduleAfter(kPending, [&fired] { ++fired; });
    });
  }
  engine.RunUntil(10 + kPending - 1);  // all initial events ran, kPending pending
  const uint64_t allocs_after_warmup = engine.arena_allocations();
  engine.RunToCompletion();
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < kPending; ++i) {
      engine.ScheduleAfter(1 + i, [&fired] { ++fired; });
    }
    engine.RunToCompletion();
  }
  EXPECT_EQ(engine.arena_allocations(), allocs_after_warmup);
  EXPECT_EQ(fired, 2 * kPending + 3 * kPending);
}

TEST(Simulation, ReservePreallocatesArena) {
  Simulation sim;
  sim.Reserve(512);
  const uint64_t allocs = sim.arena_allocations();
  int fired = 0;
  for (int i = 0; i < 512; ++i) {
    sim.ScheduleAt(i, [&fired] { ++fired; });
  }
  sim.RunToCompletion();
  EXPECT_EQ(fired, 512);
  EXPECT_EQ(sim.arena_allocations(), allocs);
}

TEST(Simulation, InterleavedRunUntilPreservesOrderAcrossReuse) {
  // Alternate schedule/run phases with varying occupancy; every event records
  // (time, global sequence) and the observed execution order must be the
  // lexicographic (time, seq) order.
  Simulation sim;
  struct Obs {
    Nanos time;
    int seq;
  };
  std::vector<Obs> observed;
  int seq = 0;
  auto record = [&observed, &sim](int s) {
    observed.push_back(Obs{sim.Now(), s});
  };
  for (int phase = 0; phase < 4; ++phase) {
    const Nanos base = sim.Now();
    for (int i = 0; i < 16; ++i) {
      const int s = seq++;
      // Mix of duplicate and distinct times, deliberately non-monotone.
      const Nanos t = base + ((i * 7) % 5);
      sim.ScheduleAt(t, [&record, s] { record(s); });
    }
    sim.RunUntil(base + 2);  // split each batch across two run calls
    sim.RunUntil(base + 10);
  }
  ASSERT_EQ(observed.size(), 64u);
  for (size_t i = 1; i < observed.size(); ++i) {
    const bool ordered =
        observed[i - 1].time < observed[i].time ||
        (observed[i - 1].time == observed[i].time &&
         observed[i - 1].seq < observed[i].seq);
    EXPECT_TRUE(ordered) << "event " << i << " out of (time, seq) order";
  }
}

}  // namespace
}  // namespace psp
