// DES core tests: ordering, FIFO tie-breaking, nested scheduling.
#include "src/sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace psp {
namespace {

TEST(Simulation, ExecutesInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.ScheduleAt(30, [&] { order.push_back(3); });
  sim.ScheduleAt(10, [&] { order.push_back(1); });
  sim.ScheduleAt(20, [&] { order.push_back(2); });
  sim.RunToCompletion();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), 30);
  EXPECT_EQ(sim.executed_events(), 3u);
}

TEST(Simulation, SimultaneousEventsRunFifo) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.ScheduleAt(5, [&order, i] { order.push_back(i); });
  }
  sim.RunToCompletion();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(Simulation, EventsCanScheduleMoreEvents) {
  Simulation sim;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 100) {
      sim.ScheduleAfter(7, chain);
    }
  };
  sim.ScheduleAt(0, chain);
  sim.RunToCompletion();
  EXPECT_EQ(fired, 100);
  EXPECT_EQ(sim.Now(), 99 * 7);
}

TEST(Simulation, RunUntilStopsAtBoundary) {
  Simulation sim;
  int fired = 0;
  sim.ScheduleAt(10, [&] { ++fired; });
  sim.ScheduleAt(20, [&] { ++fired; });
  sim.ScheduleAt(30, [&] { ++fired; });
  sim.RunUntil(20);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.Now(), 20);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.RunToCompletion();
  EXPECT_EQ(fired, 3);
}

TEST(Simulation, RunUntilAdvancesTimeWhenIdle) {
  Simulation sim;
  sim.RunUntil(500);
  EXPECT_EQ(sim.Now(), 500);
}

TEST(Simulation, ScheduleAfterUsesCurrentTime) {
  Simulation sim;
  Nanos seen = -1;
  sim.ScheduleAt(100, [&] {
    sim.ScheduleAfter(50, [&] { seen = sim.Now(); });
  });
  sim.RunToCompletion();
  EXPECT_EQ(seen, 150);
}

}  // namespace
}  // namespace psp
