// Tests for the profiling-window machinery of §4.3.3: per-type moving
// averages, occurrence ratios, and the three-way transition gate (delay
// signal + minimum samples + demand deviation).
#include "src/core/profiler.h"

#include <gtest/gtest.h>

namespace psp {
namespace {

ProfilerConfig SmallWindows() {
  ProfilerConfig c;
  c.min_window_samples = 10;
  c.min_demand_deviation = 0.10;
  c.slo_slowdown = 10.0;
  return c;
}

TEST(Profiler, TracksPerTypeMeans) {
  Profiler p(SmallWindows());
  p.ResizeTypes(2);
  for (int i = 0; i < 100; ++i) {
    p.RecordCompletion(0, 1000);
    p.RecordCompletion(1, 100000);
  }
  EXPECT_NEAR(static_cast<double>(p.MeanServiceTime(0)), 1000, 1);
  EXPECT_NEAR(static_cast<double>(p.MeanServiceTime(1)), 100000, 1);
}

TEST(Profiler, EwmaConvergesAfterServiceTimeChange) {
  ProfilerConfig c = SmallWindows();
  c.ewma_alpha = 0.25;
  Profiler p(c);
  p.ResizeTypes(1);
  for (int i = 0; i < 50; ++i) {
    p.RecordCompletion(0, 1000);
  }
  for (int i = 0; i < 100; ++i) {
    p.RecordCompletion(0, 9000);
  }
  EXPECT_NEAR(static_cast<double>(p.MeanServiceTime(0)), 9000, 100);
}

TEST(Profiler, SeededMeanUsedUntilSamplesArrive) {
  Profiler p(SmallWindows());
  p.SeedProfile(3, 5000, 0.5);
  EXPECT_EQ(p.MeanServiceTime(3), 5000);
  p.RecordCompletion(3, 700);
  EXPECT_EQ(p.MeanServiceTime(3), 700);
}

TEST(Profiler, DelaySignalRaisedOnlyBeyondSlo) {
  Profiler p(SmallWindows());
  p.ResizeTypes(1);
  p.RecordCompletion(0, 1000);
  p.ObserveQueueingDelay(0, 5000);  // 5× mean: under the 10× SLO
  EXPECT_FALSE(p.delay_signal());
  p.ObserveQueueingDelay(0, 20000);  // 20×: over
  EXPECT_TRUE(p.delay_signal());
}

TEST(Profiler, NoSignalForUnknownMean) {
  Profiler p(SmallWindows());
  p.ResizeTypes(1);
  p.ObserveQueueingDelay(0, 1000000);  // no samples yet: mean unknown
  EXPECT_FALSE(p.delay_signal());
}

TEST(Profiler, CheckUpdateRequiresAllThreeGates) {
  Profiler p(SmallWindows());
  p.ResizeTypes(2);

  // Gate 1: no delay signal -> no update even with samples.
  for (int i = 0; i < 20; ++i) {
    p.RecordCompletion(0, 1000);
    p.RecordCompletion(1, 100000);
  }
  EXPECT_FALSE(p.CheckUpdate().has_value());

  // Gate 2: delay signal but too few samples (fresh window) -> no update.
  auto first = p.CheckUpdate(/*force=*/true);  // bootstrap applies demand
  ASSERT_TRUE(first.has_value());
  p.RecordCompletion(0, 1000);
  p.ObserveQueueingDelay(0, 50000);
  EXPECT_TRUE(p.delay_signal());
  EXPECT_FALSE(p.CheckUpdate().has_value());

  // Gate 3: signal + samples but demand unchanged -> no update, window rolls.
  for (int i = 0; i < 20; ++i) {
    p.RecordCompletion(0, 1000);
    p.RecordCompletion(1, 100000);
  }
  p.ObserveQueueingDelay(0, 50000);
  EXPECT_FALSE(p.CheckUpdate().has_value());
  EXPECT_FALSE(p.delay_signal());     // signal consumed
  EXPECT_EQ(p.window_samples(), 0u);  // window rolled

  // All three: signal + samples + shifted demand -> update fires.
  for (int i = 0; i < 20; ++i) {
    p.RecordCompletion(0, 100000);  // type 0 became long
    p.RecordCompletion(1, 1000);    // type 1 became short
  }
  p.ObserveQueueingDelay(0, 5000000);
  const auto update = p.CheckUpdate();
  ASSERT_TRUE(update.has_value());
  EXPECT_GT((*update)[0].mean_service_nanos, (*update)[1].mean_service_nanos);
}

TEST(Profiler, BuildsOccurrenceRatiosFromWindowCounts) {
  Profiler p(SmallWindows());
  p.ResizeTypes(2);
  for (int i = 0; i < 90; ++i) {
    p.RecordCompletion(0, 1000);
  }
  for (int i = 0; i < 10; ++i) {
    p.RecordCompletion(1, 1000);
  }
  const auto demands = p.SnapshotDemands();
  ASSERT_EQ(demands.size(), 2u);
  EXPECT_NEAR(demands[0].ratio, 0.9, 1e-9);
  EXPECT_NEAR(demands[1].ratio, 0.1, 1e-9);
}

TEST(Profiler, UnseenTypeHasZeroDemandInWindow) {
  Profiler p(SmallWindows());
  p.ResizeTypes(2);
  for (int i = 0; i < 20; ++i) {
    p.RecordCompletion(0, 1000);
  }
  const auto demands = p.SnapshotDemands();
  EXPECT_EQ(demands[1].ratio, 0.0);
  EXPECT_EQ(demands[1].mean_service_nanos, 0.0);
}

TEST(Profiler, ForceUpdateWithoutAnyDataReturnsNothing) {
  Profiler p(SmallWindows());
  p.ResizeTypes(2);
  EXPECT_FALSE(p.CheckUpdate(/*force=*/true).has_value());
}

TEST(Profiler, SeedsProduceDemandsBeforeFirstWindow) {
  Profiler p(SmallWindows());
  p.SeedProfile(0, 1000, 0.5);
  p.SeedProfile(1, 100000, 0.5);
  EXPECT_TRUE(p.HasDemands());
  const auto update = p.CheckUpdate(/*force=*/true);
  ASSERT_TRUE(update.has_value());
  EXPECT_EQ((*update)[0].mean_service_nanos, 1000.0);
  EXPECT_EQ((*update)[1].ratio, 0.5);
}

TEST(Profiler, WindowCountsResetAfterUpdate) {
  Profiler p(SmallWindows());
  p.ResizeTypes(1);
  for (int i = 0; i < 15; ++i) {
    p.RecordCompletion(0, 1000);
  }
  EXPECT_EQ(p.window_samples(), 15u);
  ASSERT_TRUE(p.CheckUpdate(/*force=*/true).has_value());
  EXPECT_EQ(p.window_samples(), 0u);
  EXPECT_EQ(p.windows_completed(), 1u);
  // Lifetime mean survives the roll.
  EXPECT_NEAR(static_cast<double>(p.MeanServiceTime(0)), 1000, 1);
}

TEST(Profiler, OutOfRangeTypeIsIgnored) {
  Profiler p(SmallWindows());
  p.ResizeTypes(1);
  p.RecordCompletion(57, 1000);  // silently ignored
  EXPECT_EQ(p.window_samples(), 0u);
  EXPECT_EQ(p.MeanServiceTime(57), 0);
}

}  // namespace
}  // namespace psp
