// Worker time-provenance ledger: exhaustive state decomposition must account
// for every nanosecond of wall time — exactly in the simulator's virtual
// clock, within measured bounds on the threaded runtime — and stay
// bit-deterministic per seed so ledger output is replayable evidence.
#include "src/telemetry/timeledger.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/apps/synthetic.h"
#include "src/runtime/loadgen.h"
#include "src/runtime/persephone.h"
#include "src/sim/cluster.h"
#include "src/sim/policies/persephone.h"

namespace psp {
namespace {

TEST(TimeLedger, PackUnpackRoundTrip) {
  const WorkerTimeState states[] = {
      WorkerTimeState::kBusy,       WorkerTimeState::kSteal,
      WorkerTimeState::kReservedIdle, WorkerTimeState::kFreeIdle,
      WorkerTimeState::kPollSpin,   WorkerTimeState::kDispatchOverhead};
  const uint32_t types[] = {WorkerTimeLedger::kUntyped, 0u, 5u,
                            WorkerTimeLedger::kMaxLedgerTypes - 1};
  for (const WorkerTimeState s : states) {
    for (const uint32_t t : types) {
      const uint32_t packed = WorkerTimeLedger::Pack(s, t);
      EXPECT_EQ(WorkerTimeLedger::UnpackState(packed), s);
      EXPECT_EQ(WorkerTimeLedger::UnpackType(packed), t);
    }
    // Types past the dense cap collapse to untyped (still busy).
    const uint32_t overflow =
        WorkerTimeLedger::Pack(s, WorkerTimeLedger::kMaxLedgerTypes);
    EXPECT_EQ(WorkerTimeLedger::UnpackState(overflow), s);
    EXPECT_EQ(WorkerTimeLedger::UnpackType(overflow),
              WorkerTimeLedger::kUntyped);
  }
}

TEST(TimeLedger, TransitionsDecomposeWallTimeExactly) {
  WorkerTimeLedger ledger;
  ledger.Open(2, /*now=*/1000);
  // Worker 0: free_idle 1000..1500, busy(type 3) 1500..2600, reserved_idle
  // 2600..2900, then in-progress steal 2900..snapshot(3000).
  ledger.Transition(0, WorkerTimeState::kBusy, 3, 1500);
  ledger.Transition(0, WorkerTimeState::kReservedIdle,
                    WorkerTimeLedger::kUntyped, 2600);
  ledger.Transition(0, WorkerTimeState::kSteal, 3, 2900);
  const std::vector<WorkerTimeRecord> records =
      ledger.SnapshotTotals(3000, nullptr);
  // Two workers plus the dispatcher pseudo-slot.
  ASSERT_EQ(records.size(), 3u);

  const WorkerTimeRecord& w0 = records[0];
  EXPECT_EQ(w0.role, "worker");
  EXPECT_EQ(w0.state_ns[static_cast<size_t>(WorkerTimeState::kFreeIdle)],
            500u);
  EXPECT_EQ(w0.state_ns[static_cast<size_t>(WorkerTimeState::kBusy)], 1100u);
  EXPECT_EQ(
      w0.state_ns[static_cast<size_t>(WorkerTimeState::kReservedIdle)], 300u);
  EXPECT_EQ(w0.state_ns[static_cast<size_t>(WorkerTimeState::kSteal)], 100u);
  EXPECT_EQ(w0.WallNs(), 2000u);  // 3000 - open at 1000: exhaustive
  EXPECT_EQ(w0.BusyNs(), 1200u);
  // Typed split covers busy + steal: type 3 carries all 1200 ns.
  ASSERT_EQ(w0.busy_type_ns.size(), 1u);
  EXPECT_EQ(w0.busy_type_ns[0].first, "type-3");
  EXPECT_EQ(w0.busy_type_ns[0].second, 1200u);

  // Worker 1 never transitioned: all wall time is the in-progress free_idle.
  const WorkerTimeRecord& w1 = records[1];
  EXPECT_EQ(w1.state_ns[static_cast<size_t>(WorkerTimeState::kFreeIdle)],
            2000u);
  EXPECT_EQ(w1.WallNs(), 2000u);

  // Snapshots are idempotent (nothing in the ledger moved).
  EXPECT_EQ(ledger.SnapshotTotals(3000, nullptr), records);
}

TEST(TimeLedger, RemainderStateAbsorbsUnaccountedWall) {
  WorkerTimeLedger ledger;
  ledger.Open(1, /*now=*/0);
  const uint32_t d = ledger.dispatcher_slot();
  ledger.SetRemainderState(d, WorkerTimeState::kPollSpin);
  // Only 400 ns of explicit charges on a 1000 ns wall: the remainder (600)
  // lands on poll_spin, so the slot still sums to wall exactly.
  ledger.Add(d, WorkerTimeState::kDispatchOverhead, 400);
  const std::vector<WorkerTimeRecord> records =
      ledger.SnapshotTotals(1000, nullptr);
  const WorkerTimeRecord& disp = records.back();
  EXPECT_EQ(disp.role, "dispatcher");
  EXPECT_EQ(
      disp.state_ns[static_cast<size_t>(WorkerTimeState::kDispatchOverhead)],
      400u);
  EXPECT_EQ(disp.state_ns[static_cast<size_t>(WorkerTimeState::kPollSpin)],
            600u);
  EXPECT_EQ(disp.WallNs(), 1000u);
}

ClusterConfig SimConfig(uint64_t seed) {
  ClusterConfig c;
  c.num_workers = 8;
  c.rate_rps = 0.8 * HighBimodal().PeakLoadRps(8);
  c.duration = 100 * kMillisecond;
  c.dispatch_cost = 100;
  c.completion_cost = 40;
  c.seed = seed;
  return c;
}

std::vector<WorkerTimeRecord> RunSimLedger(uint64_t seed, PolicyMode mode,
                                           uint32_t static_reserved = 0) {
  PersephoneOptions options;
  options.scheduler.mode = mode;
  options.scheduler.static_reserved = static_reserved;
  ClusterEngine engine(HighBimodal(), SimConfig(seed),
                       std::make_unique<PersephonePolicy>(options));
  engine.Run();
  return engine.telemetry_snapshot().worker_time;
}

TEST(TimeLedger, SimulatorStatesSumToVirtualWallExactly) {
  const std::vector<WorkerTimeRecord> records =
      RunSimLedger(42, PolicyMode::kDarc);
  ASSERT_EQ(records.size(), 9u);  // 8 workers + dispatcher
  // Virtual time: every slot opened at 0 and snapshot at the same instant,
  // so all walls are identical and each decomposition is exact by
  // construction — no epsilon.
  const uint64_t wall = records[0].WallNs();
  EXPECT_GT(wall, 0u);
  uint64_t total_busy = 0;
  for (const WorkerTimeRecord& rec : records) {
    EXPECT_EQ(rec.WallNs(), wall) << "slot " << rec.slot;
    total_busy += rec.BusyNs();
    // Typed busy never exceeds the busy + steal total it decomposes.
    uint64_t typed = 0;
    for (const auto& [name, ns] : rec.busy_type_ns) {
      typed += ns;
    }
    EXPECT_LE(typed, rec.BusyNs()) << "slot " << rec.slot;
  }
  EXPECT_GT(total_busy, 0u);
  // The dispatcher pseudo-slot burns its wall on overhead + poll, not busy.
  const WorkerTimeRecord& disp = records.back();
  EXPECT_EQ(disp.role, "dispatcher");
  EXPECT_EQ(disp.BusyNs(), 0u);
  EXPECT_GT(
      disp.state_ns[static_cast<size_t>(WorkerTimeState::kDispatchOverhead)],
      0u);
}

TEST(TimeLedger, SimulatorReservedIdleAppearsUnderStaticReservation) {
  // Reserving 6 of 8 cores for shorts at 80% load forces deliberate idling:
  // the ledger must attribute it to reserved_idle, not free_idle.
  const std::vector<WorkerTimeRecord> records =
      RunSimLedger(42, PolicyMode::kDarcStatic, 6);
  uint64_t reserved_idle = 0;
  for (const WorkerTimeRecord& rec : records) {
    reserved_idle +=
        rec.state_ns[static_cast<size_t>(WorkerTimeState::kReservedIdle)];
  }
  EXPECT_GT(reserved_idle, 0u);
}

TEST(TimeLedger, SimulatorLedgerBitDeterministicPerSeed) {
  for (const uint64_t seed : {7u, 123u}) {
    const std::vector<WorkerTimeRecord> a =
        RunSimLedger(seed, PolicyMode::kDarc);
    const std::vector<WorkerTimeRecord> b =
        RunSimLedger(seed, PolicyMode::kDarc);
    // operator== compares every field including the typed splits: the whole
    // ledger is part of the deterministic replay surface.
    EXPECT_EQ(a, b) << "seed " << seed;
  }
  EXPECT_NE(RunSimLedger(7, PolicyMode::kDarc),
            RunSimLedger(123, PolicyMode::kDarc));
}

TEST(TimeLedger, RuntimeStatesSumToMeasuredWall) {
  const TscClock& clock = TscClock::Global();
  const Nanos before_ctor = clock.Now();
  RuntimeConfig config;
  config.num_workers = 2;
  config.pool_buffers = 1024;
  config.telemetry.timeseries.enabled = true;
  config.telemetry.timeseries.interval = 50 * kMillisecond;
  Persephone server(config);  // ledger opens here
  const Nanos after_ctor = clock.Now();
  server.RegisterType(1, "SHORT", MakeSpinHandler(), FromMicros(2), 0.9);
  server.RegisterType(2, "LONG", MakeSpinHandler(), FromMicros(50), 0.1);
  server.Start();

  LoadGenConfig lg;
  lg.rate_rps = 3000;
  lg.total_requests = 1200;
  LoadGenerator gen(&server,
                    {MakeSpinSpec(1, "SHORT", 0.9, FromMicros(2)),
                     MakeSpinSpec(2, "LONG", 0.1, FromMicros(50))},
                    lg);
  gen.Run();
  server.Stop();

  const Nanos before_snap = clock.Now();
  const TelemetrySnapshot snap = server.telemetry_snapshot();
  const Nanos after_snap = clock.Now();
  ASSERT_EQ(snap.worker_time.size(), 3u);  // 2 workers + dispatcher

  uint64_t total_busy = 0;
  for (const WorkerTimeRecord& rec : snap.worker_time) {
    // The decomposition is exhaustive, so each slot's wall must bracket the
    // measured interval: opened after before_ctor, snapped before after_snap
    // (lower bound), and covering at least ctor-to-snapshot (upper bound
    // side). Cross-thread skew cannot move wall outside these measurements.
    EXPECT_LE(rec.WallNs(), static_cast<uint64_t>(after_snap - before_ctor))
        << "slot " << rec.slot;
    EXPECT_GE(rec.WallNs(), static_cast<uint64_t>(before_snap - after_ctor))
        << "slot " << rec.slot;
    total_busy += rec.BusyNs();
  }
  // 1200 requests spun for at least ~2 µs each.
  EXPECT_GT(total_busy, 1200 * FromMicros(1));

  // Interval gauges: the aggregate state permilles are floor-rounded shares
  // of a common denominator, so each interval sums to 1000 less at most one
  // rounding unit per state.
  ASSERT_FALSE(snap.timeseries.empty());
  bool saw_interval = false;
  for (const IntervalRecord& rec : snap.timeseries) {
    int64_t sum = 0;
    for (const int64_t permille : rec.worker_state_permille) {
      EXPECT_GE(permille, 0);
      EXPECT_LE(permille, 1000);
      sum += permille;
    }
    if (sum == 0) {
      continue;  // degenerate close with no wall elapsed: gauges stay zero
    }
    saw_interval = true;
    EXPECT_GE(sum, 1000 - static_cast<int64_t>(kNumWorkerTimeStates));
    EXPECT_LE(sum, 1000);
  }
  EXPECT_TRUE(saw_interval);
}

}  // namespace
}  // namespace psp
