// Bloom filter tests: no false negatives, bounded false positives, sizing.
#include "src/common/bloom_filter.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace psp {
namespace {

TEST(BloomFilter, NoFalseNegatives) {
  BloomFilter filter(1000, 0.01);
  for (uint64_t k = 0; k < 1000; ++k) {
    filter.Add(k * 7919);
  }
  for (uint64_t k = 0; k < 1000; ++k) {
    EXPECT_TRUE(filter.MayContain(k * 7919)) << k;
  }
}

TEST(BloomFilter, FalsePositiveRateNearTarget) {
  BloomFilter filter(10000, 0.01);
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    filter.Add(rng.Next());
  }
  // Probe disjoint keys (different generator stream).
  Rng probe(999);
  int positives = 0;
  constexpr int kProbes = 50000;
  for (int i = 0; i < kProbes; ++i) {
    positives += filter.MayContain(probe.Next()) ? 1 : 0;
  }
  const double rate = static_cast<double>(positives) / kProbes;
  EXPECT_LT(rate, 0.03);  // target 1%, allow slack
}

TEST(BloomFilter, EmptyFilterRejectsEverything) {
  BloomFilter filter(100);
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(filter.MayContain(rng.Next()));
  }
}

TEST(BloomFilter, ZeroExpectedKeysStillWorks) {
  BloomFilter filter(0);
  filter.Add(42);
  EXPECT_TRUE(filter.MayContain(42));
}

TEST(BloomFilter, SizingScalesWithKeys) {
  BloomFilter small(100, 0.01);
  BloomFilter big(100000, 0.01);
  EXPECT_GT(big.bit_count(), small.bit_count() * 100);
  EXPECT_GE(small.num_hashes(), 1);
}

}  // namespace
}  // namespace psp
