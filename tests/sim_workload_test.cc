// Workload spec tests: the paper's Tables 3 & 4 parameters and derived
// quantities (mean service times, peak loads, phase structure).
#include "src/sim/workload.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace psp {
namespace {

TEST(Workloads, HighBimodalParameters) {
  const WorkloadSpec w = HighBimodal();
  ASSERT_EQ(w.types().size(), 2u);
  EXPECT_EQ(w.types()[0].mean_us, 1.0);
  EXPECT_EQ(w.types()[1].mean_us, 100.0);
  // Mean = 50.5 µs; 14 workers peak ≈ 277 kRPS.
  EXPECT_NEAR(w.MeanServiceNanos(), 50500.0, 0.1);
  EXPECT_NEAR(w.PeakLoadRps(14), 14e9 / 50500.0, 1.0);
}

TEST(Workloads, ExtremeBimodalParameters) {
  const WorkloadSpec w = ExtremeBimodal();
  EXPECT_NEAR(w.MeanServiceNanos(), 2997.5, 0.1);
  // §2: "up to a maximum of 5.3 million requests per second" on 16 workers.
  EXPECT_NEAR(w.PeakLoadRps(16) / 1e6, 5.34, 0.01);
}

TEST(Workloads, TpccParameters) {
  const WorkloadSpec w = TpccMix();
  ASSERT_EQ(w.types().size(), 5u);
  double ratio_sum = 0;
  for (const auto& t : w.types()) {
    ratio_sum += t.ratio;
  }
  EXPECT_NEAR(ratio_sum, 1.0, 1e-9);
  // Table 4 weighted mean: 19.068 µs.
  EXPECT_NEAR(w.MeanServiceNanos(), 19068.0, 1.0);
}

TEST(Workloads, RocksDbParameters) {
  const WorkloadSpec w = RocksDbMix();
  EXPECT_NEAR(w.MeanServiceNanos(), 318250.0, 1.0);
  EXPECT_EQ(w.types()[0].name, "GET");
  EXPECT_EQ(w.types()[1].name, "SCAN");
}

TEST(Workloads, FourPhaseStructure) {
  const WorkloadSpec w = FourPhaseAdaptation(2 * kSecond);
  ASSERT_EQ(w.phases.size(), 4u);
  for (const auto& p : w.phases) {
    EXPECT_EQ(p.duration, 2 * kSecond);
  }
  // Phase 1 and 2 swap service times for A and B.
  EXPECT_EQ(w.phases[0].types[0].mean_us, 100.0);
  EXPECT_EQ(w.phases[1].types[0].mean_us, 1.0);
  // Phase 3 ratio change lifts A's demand fraction to ~2/14 cores and
  // scales the rate to hold utilisation.
  EXPECT_EQ(w.phases[2].types[0].ratio, 0.94);
  EXPECT_GT(w.phases[2].load_scale, 7.0);
  // Phase 4 has only type A.
  EXPECT_EQ(w.phases[3].types.size(), 1u);
  // AllTypes is the union {A, B}.
  EXPECT_EQ(w.AllTypes().size(), 2u);
}

TEST(PhaseSampler, RespectsRatiosAndServiceTimes) {
  const WorkloadSpec w = ExtremeBimodal();
  PhaseSampler sampler(w.phases[0]);
  Rng rng(9);
  int longs = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    const MixtureDraw d = sampler.Sample(rng);
    if (d.mode == 1) {
      ++longs;
      EXPECT_EQ(d.service_time, FromMicros(500.0));
    }
  }
  EXPECT_NEAR(static_cast<double>(longs) / kDraws, 0.005, 0.002);
}

TEST(PhaseSampler, SupportsNonFixedShapes) {
  WorkloadPhase phase;
  phase.types.push_back(
      WorkloadType{1, "EXP", 10.0, 1.0, ServiceShape::kExponential});
  PhaseSampler sampler(phase);
  Rng rng(10);
  double sum = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    sum += static_cast<double>(sampler.Sample(rng).service_time);
  }
  EXPECT_NEAR(sum / kDraws / 1000.0, 10.0, 0.3);
}


TEST(Workloads, FacebookUsrLikeParameters) {
  const WorkloadSpec w = FacebookUsrLike();
  ASSERT_EQ(w.types().size(), 3u);
  double ratio_sum = 0;
  for (const auto& t : w.types()) {
    ratio_sum += t.ratio;
  }
  EXPECT_NEAR(ratio_sum, 1.0, 1e-9);
  // 400x dispersion between GET and RANGE.
  EXPECT_NEAR(w.types()[2].mean_us / w.types()[0].mean_us, 400.0, 0.1);
}

}  // namespace
}  // namespace psp
