// Inter-server dispatch policies: distribution, affinity, depth awareness,
// determinism, and the name/parse round trip.
#include "src/fleet/policy.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace psp {
namespace {

constexpr FleetPolicyKind kAllKinds[] = {
    FleetPolicyKind::kRandom,      FleetPolicyKind::kRssHash,
    FleetPolicyKind::kRoundRobin,  FleetPolicyKind::kPowerOfTwo,
    FleetPolicyKind::kShortestQueue,
};

FleetDepths DepthsOf(const std::vector<int64_t>& v) {
  return FleetDepths{v.data(), static_cast<uint32_t>(v.size())};
}

TEST(FleetPolicy, NamesRoundTrip) {
  for (const FleetPolicyKind kind : kAllKinds) {
    FleetPolicyKind parsed;
    ASSERT_TRUE(ParseFleetPolicy(FleetPolicyName(kind), &parsed))
        << FleetPolicyName(kind);
    EXPECT_EQ(parsed, kind);
  }
  FleetPolicyKind parsed;
  EXPECT_FALSE(ParseFleetPolicy("no-such-policy", &parsed));
  // Long-form aliases.
  ASSERT_TRUE(ParseFleetPolicy("shortest-queue", &parsed));
  EXPECT_EQ(parsed, FleetPolicyKind::kShortestQueue);
  ASSERT_TRUE(ParseFleetPolicy("round-robin", &parsed));
  EXPECT_EQ(parsed, FleetPolicyKind::kRoundRobin);
}

TEST(FleetPolicy, DefaultsAndValidation) {
  const FleetPolicyConfig po2c =
      FleetPolicyConfig::Default(FleetPolicyKind::kPowerOfTwo);
  EXPECT_EQ(po2c.depth_staleness, 0);
  EXPECT_TRUE(po2c.Validate().empty());
  const FleetPolicyConfig sq =
      FleetPolicyConfig::Default(FleetPolicyKind::kShortestQueue);
  EXPECT_EQ(sq.depth_staleness, 10 * kMicrosecond);
  FleetPolicyConfig bad = po2c;
  bad.depth_staleness = -1;
  EXPECT_FALSE(bad.Validate().empty());
}

TEST(FleetPolicy, EveryPolicyStaysInRange) {
  const std::vector<int64_t> depths = {3, 0, 7, 1, 2};
  for (const FleetPolicyKind kind : kAllKinds) {
    auto policy = FleetDispatchPolicy::Create(
        FleetPolicyConfig::Default(kind), 5);
    Rng rng(1);
    for (uint32_t i = 0; i < 1000; ++i) {
      EXPECT_LT(policy->Pick(i * 2654435761u, rng, DepthsOf(depths)), 5u);
    }
  }
}

TEST(FleetPolicy, RandomCoversAllServersRoughlyUniformly) {
  auto policy = FleetDispatchPolicy::Create(
      FleetPolicyConfig::Default(FleetPolicyKind::kRandom), 4);
  Rng rng(7);
  const std::vector<int64_t> depths(4, 0);
  int counts[4] = {};
  constexpr int kPicks = 40000;
  for (int i = 0; i < kPicks; ++i) {
    ++counts[policy->Pick(0, rng, DepthsOf(depths))];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, kPicks / 4, kPicks / 20);
  }
}

TEST(FleetPolicy, RoundRobinRotatesExactly) {
  auto policy = FleetDispatchPolicy::Create(
      FleetPolicyConfig::Default(FleetPolicyKind::kRoundRobin), 3);
  Rng rng(1);
  const std::vector<int64_t> depths(3, 0);
  for (uint32_t i = 0; i < 30; ++i) {
    EXPECT_EQ(policy->Pick(0, rng, DepthsOf(depths)), i % 3);
  }
}

TEST(FleetPolicy, RssHashIsFlowAffine) {
  auto policy = FleetDispatchPolicy::Create(
      FleetPolicyConfig::Default(FleetPolicyKind::kRssHash), 8);
  Rng rng(1);
  const std::vector<int64_t> depths(8, 0);
  // Same flow hash -> same server, always; different hashes spread.
  std::vector<uint32_t> picks;
  for (uint32_t flow = 0; flow < 64; ++flow) {
    const uint32_t hash = flow * 0x9E3779B9u;
    const uint32_t first = policy->Pick(hash, rng, DepthsOf(depths));
    for (int repeat = 0; repeat < 10; ++repeat) {
      EXPECT_EQ(policy->Pick(hash, rng, DepthsOf(depths)), first);
    }
    picks.push_back(first);
  }
  std::set<uint32_t> distinct(picks.begin(), picks.end());
  EXPECT_GT(distinct.size(), 4u);  // 64 flows over 8 servers must spread
}

TEST(FleetPolicy, PowerOfTwoPrefersShallowerOfTwoProbes) {
  auto policy = FleetDispatchPolicy::Create(
      FleetPolicyConfig::Default(FleetPolicyKind::kPowerOfTwo), 4);
  EXPECT_TRUE(policy->uses_depths());
  Rng rng(3);
  // Server 2 is drastically deeper: it should receive far fewer picks than
  // uniform (a po2c probe pair containing it always prefers the other).
  const std::vector<int64_t> depths = {0, 0, 1000, 0};
  int counts[4] = {};
  constexpr int kPicks = 10000;
  for (int i = 0; i < kPicks; ++i) {
    ++counts[policy->Pick(0, rng, DepthsOf(depths))];
  }
  // Probes sample without replacement, so server 2 always loses the
  // comparison against a zero-depth sibling: it is never picked.
  EXPECT_EQ(counts[2], 0);
  for (int s : {0, 1, 3}) {
    EXPECT_GT(counts[s], kPicks / 5);
  }
}

TEST(FleetPolicy, PowerOfTwoSingleServerDegenerates) {
  auto policy = FleetDispatchPolicy::Create(
      FleetPolicyConfig::Default(FleetPolicyKind::kPowerOfTwo), 1);
  Rng rng(3);
  const std::vector<int64_t> depths = {42};
  EXPECT_EQ(policy->Pick(0, rng, DepthsOf(depths)), 0u);
}

TEST(FleetPolicy, ShortestQueuePicksArgminWithLowestIndexTie) {
  auto policy = FleetDispatchPolicy::Create(
      FleetPolicyConfig::Default(FleetPolicyKind::kShortestQueue), 4);
  EXPECT_TRUE(policy->uses_depths());
  Rng rng(1);
  EXPECT_EQ(policy->Pick(0, rng, DepthsOf({5, 2, 8, 2})), 1u);
  EXPECT_EQ(policy->Pick(0, rng, DepthsOf({0, 0, 0, 0})), 0u);
  EXPECT_EQ(policy->Pick(0, rng, DepthsOf({9, 9, 9, 1})), 3u);
}

TEST(FleetPolicy, RandomAndPo2cAreSeedDeterministic) {
  const std::vector<int64_t> depths = {1, 3, 0, 2};
  for (const FleetPolicyKind kind :
       {FleetPolicyKind::kRandom, FleetPolicyKind::kPowerOfTwo}) {
    auto p1 = FleetDispatchPolicy::Create(FleetPolicyConfig::Default(kind), 4);
    auto p2 = FleetDispatchPolicy::Create(FleetPolicyConfig::Default(kind), 4);
    Rng r1(123);
    Rng r2(123);
    for (int i = 0; i < 500; ++i) {
      EXPECT_EQ(p1->Pick(0, r1, DepthsOf(depths)),
                p2->Pick(0, r2, DepthsOf(depths)));
    }
  }
}

}  // namespace
}  // namespace psp
