// End-to-end admin plane tests: a real AdminServer on an ephemeral loopback
// port (and UDS), scraped over actual sockets; then the full runtime with
// the endpoint enabled — counters move between scrapes, POST /config
// adjusts sampling live, and the outlier ring serves its JSON.
#include "src/introspect/admin.h"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <string>

#include "src/apps/synthetic.h"
#include "src/introspect/prometheus.h"
#include "src/runtime/loadgen.h"
#include "src/runtime/persephone.h"

namespace psp {
namespace {

// Minimal HTTP client against 127.0.0.1:`port`; returns the status line +
// full response, or "" on transport failure.
std::string HttpRequest(uint16_t port, const std::string& method,
                        const std::string& path,
                        const std::string& body = "") {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return "";
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return "";
  }
  const std::string req = method + " " + path +
                          " HTTP/1.1\r\nHost: x\r\nContent-Length: " +
                          std::to_string(body.size()) + "\r\n\r\n" + body;
  size_t sent = 0;
  while (sent < req.size()) {
    const ssize_t n = ::write(fd, req.data() + sent, req.size() - sent);
    if (n <= 0) {
      ::close(fd);
      return "";
    }
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char chunk[4096];
  ssize_t n;
  while ((n = ::read(fd, chunk, sizeof(chunk))) > 0) {
    response.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string Body(const std::string& response) {
  const size_t pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? "" : response.substr(pos + 4);
}

int Status(const std::string& response) {
  if (response.compare(0, 5, "HTTP/") != 0) {
    return -1;
  }
  return std::atoi(response.c_str() + response.find(' ') + 1);
}

TEST(AdminServer, ServesMetricsSnapshotAndHealth) {
  AdminConfig config;
  config.enabled = true;  // port 0 = ephemeral
  AdminHooks hooks;
  hooks.snapshot = [] {
    TelemetrySnapshot snap;
    snap.counters["test.counter"] = 5;
    return snap;
  };
  AdminServer server(config, hooks);
  ASSERT_EQ(server.Start(), "");
  ASSERT_GT(server.port(), 0);

  const std::string metrics = HttpRequest(server.port(), "GET", "/metrics");
  EXPECT_EQ(Status(metrics), 200);
  EXPECT_NE(Body(metrics).find("psp_test_counter_total 5"),
            std::string::npos);
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);

  const std::string snapshot =
      HttpRequest(server.port(), "GET", "/snapshot.json");
  EXPECT_EQ(Status(snapshot), 200);
  EXPECT_NE(Body(snapshot).find("\"test.counter\""), std::string::npos);

  const std::string timeseries =
      HttpRequest(server.port(), "GET", "/timeseries.json");
  EXPECT_EQ(Status(timeseries), 200);

  const std::string health = HttpRequest(server.port(), "GET", "/healthz");
  EXPECT_EQ(Status(health), 200);
  EXPECT_EQ(Body(health), "ok\n");

  // Unknown path and unhooked endpoints.
  EXPECT_EQ(Status(HttpRequest(server.port(), "GET", "/nope")), 404);
  EXPECT_EQ(Status(HttpRequest(server.port(), "GET", "/outliers.json")), 404);
  EXPECT_EQ(Status(HttpRequest(server.port(), "POST", "/trace/start")), 501);
  EXPECT_EQ(Status(HttpRequest(server.port(), "PUT", "/metrics")), 405);
  EXPECT_GE(server.requests_served(), 8u);
  server.Stop();
  EXPECT_FALSE(server.running());
}

TEST(AdminServer, UnixDomainSocketListener) {
  AdminConfig config;
  config.enabled = true;
  config.listen_tcp = false;
  config.uds_path = ::testing::TempDir() + "/psp_admin_test.sock";
  AdminHooks hooks;
  hooks.snapshot = [] { return TelemetrySnapshot{}; };
  AdminServer server(config, hooks);
  ASSERT_EQ(server.Start(), "");
  EXPECT_EQ(server.port(), 0);  // no TCP listener

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, config.uds_path.c_str(),
               sizeof(addr.sun_path) - 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const char req[] = "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n";
  ASSERT_EQ(::write(fd, req, sizeof(req) - 1),
            static_cast<ssize_t>(sizeof(req) - 1));
  std::string response;
  char chunk[1024];
  ssize_t n;
  while ((n = ::read(fd, chunk, sizeof(chunk))) > 0) {
    response.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);
  EXPECT_EQ(Status(response), 200);
  server.Stop();
  // Stop removes the socket file.
  EXPECT_NE(::access(config.uds_path.c_str(), F_OK), 0);
}

TEST(AdminServer, ConfigPostValidation) {
  AdminConfig config;
  config.enabled = true;
  AdminHooks hooks;
  hooks.snapshot = [] { return TelemetrySnapshot{}; };
  hooks.set_config = [](const std::string& key, const std::string& value) {
    if (key == "good") {
      return std::string();
    }
    return "unknown key " + key + "=" + value;
  };
  AdminServer server(config, hooks);
  ASSERT_EQ(server.Start(), "");

  EXPECT_EQ(Status(HttpRequest(server.port(), "POST", "/config", "good=1")),
            200);
  EXPECT_EQ(
      Status(HttpRequest(server.port(), "POST", "/config", "good=1\nbad=2")),
      400);
  EXPECT_EQ(Status(HttpRequest(server.port(), "POST", "/config", "")), 400);
  EXPECT_EQ(Status(HttpRequest(server.port(), "POST", "/config", "noequals")),
            400);
  server.Stop();
}

// The full loop: runtime with the admin plane on, real load, two scrapes
// observing progress, live sampling adjustment, outliers and trace capture.
TEST(AdminServer, RuntimeEndToEnd) {
  RuntimeConfig config;
  config.num_workers = 2;
  config.telemetry.sample_every = 2;
  config.telemetry.timeseries.enabled = true;
  config.telemetry.timeseries.interval = 10 * kMillisecond;
  config.admin.enabled = true;  // ephemeral port
  config.outliers.enabled = true;
  config.outliers.k = 4;
  Persephone server(config);
  server.RegisterType(1, "SPIN", MakeSpinHandler(), FromMicros(5), 1.0);
  server.Start();
  const uint16_t port = server.admin_port();
  ASSERT_GT(port, 0);

  // Scrape an idle server: liveness marker present, exposition well formed.
  const std::string before = Body(HttpRequest(port, "GET", "/metrics"));
  EXPECT_NE(before.find("psp_up 1"), std::string::npos);

  // Arm a trace capture, then drive load.
  EXPECT_EQ(Status(HttpRequest(port, "POST", "/trace/start")), 200);
  // Double-arm is a 409.
  EXPECT_EQ(Status(HttpRequest(port, "POST", "/trace/start")), 409);

  LoadGenConfig lg;
  lg.rate_rps = 4000;
  lg.total_requests = 400;
  LoadGenerator gen(&server, {MakeSpinSpec(1, "SPIN", 1.0, FromMicros(5))},
                    lg);
  gen.Run();

  // Counters moved between scrapes.
  const std::string after = Body(HttpRequest(port, "GET", "/metrics"));
  EXPECT_NE(after.find("psp_runtime_rx_packets_total 400"),
            std::string::npos)
      << after.substr(0, 2000);

  // Live sampling change through POST /config.
  EXPECT_EQ(Status(HttpRequest(port, "POST", "/config", "sampling=8")), 200);
  EXPECT_EQ(server.telemetry().sample_every(), 8u);
  EXPECT_EQ(Status(HttpRequest(port, "POST", "/config", "sampling=x")), 400);

  // Outliers captured with full stage breakdowns.
  const std::string outliers = Body(HttpRequest(port, "GET",
                                                "/outliers.json"));
  EXPECT_NE(outliers.find("\"name\":\"SPIN\""), std::string::npos);
  EXPECT_NE(outliers.find("\"stages\""), std::string::npos);
  EXPECT_GT(server.outliers()->offered(), 0u);

  // Stop the capture: a catapult trace with events comes back.
  const std::string trace = HttpRequest(port, "POST", "/trace/stop");
  EXPECT_EQ(Status(trace), 200);
  EXPECT_NE(Body(trace).find("\"traceEvents\""), std::string::npos);
  // Stopping again without re-arming is a 409.
  EXPECT_EQ(Status(HttpRequest(port, "POST", "/trace/stop")), 409);

  // Flight record on demand.
  const std::string flight =
      HttpRequest(port, "POST", "/flightrecorder/dump");
  EXPECT_EQ(Status(flight), 200);
  EXPECT_FALSE(Body(flight).empty());

  server.Stop();
  // The endpoint is down after Stop().
  EXPECT_EQ(HttpRequest(port, "GET", "/healthz"), "");
}

}  // namespace
}  // namespace psp
