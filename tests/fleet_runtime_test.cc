// FleetRuntime end-to-end: two real Persephone servers behind the front-end
// dispatch thread, client-observed latency through Submit/harvest, round-robin
// spread, and the fleet admin plane scraped over a real loopback socket.
#include "src/fleet/fleet_runtime.h"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <string>
#include <thread>

#include "src/apps/synthetic.h"

namespace psp {
namespace {

// Minimal HTTP client against 127.0.0.1:`port`; returns the status line +
// full response, or "" on transport failure.
std::string HttpRequest(uint16_t port, const std::string& method,
                        const std::string& path,
                        const std::string& body = "") {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return "";
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return "";
  }
  const std::string req = method + " " + path +
                          " HTTP/1.1\r\nHost: x\r\nContent-Length: " +
                          std::to_string(body.size()) + "\r\n\r\n" + body;
  size_t sent = 0;
  while (sent < req.size()) {
    const ssize_t n = ::write(fd, req.data() + sent, req.size() - sent);
    if (n <= 0) {
      ::close(fd);
      return "";
    }
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char chunk[4096];
  ssize_t n;
  while ((n = ::read(fd, chunk, sizeof(chunk))) > 0) {
    response.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string Body(const std::string& response) {
  const size_t pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? "" : response.substr(pos + 4);
}

int Status(const std::string& response) {
  if (response.compare(0, 5, "HTTP/") != 0) {
    return -1;
  }
  return std::atoi(response.c_str() + response.find(' ') + 1);
}

FleetRuntimeConfig SmallFleetRuntime(FleetPolicyKind kind,
                                     uint32_t servers = 2) {
  FleetRuntimeConfig config;
  config.num_servers = servers;
  config.server.num_workers = 2;
  config.server.pool_buffers = 1024;
  config.policy = FleetPolicyConfig::Default(kind);
  return config;
}

// Submits `total` spin requests, then polls until every dispatched request
// has come back (or a generous deadline expires).
void SubmitAndDrain(FleetRuntime& fleet, uint64_t total, Nanos spin) {
  for (uint64_t i = 0; i < total; ++i) {
    while (!fleet.Submit(1, static_cast<uint32_t>(i * 2654435761u), &spin,
                         sizeof(spin))) {
      std::this_thread::yield();
    }
    // A short pause keeps the 2-worker servers from saturating: this is a
    // smoke test of the plumbing, not a load test.
    if (i % 64 == 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline) {
    const FleetClientReport report = fleet.client_report();
    if (report.responses + report.dispatch_drops >= total) {
      return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

TEST(FleetRuntime, DispatchesAndHarvestsAcrossTwoServers) {
  FleetRuntime fleet(SmallFleetRuntime(FleetPolicyKind::kRoundRobin));
  fleet.RegisterType(1, "SPIN", MakeSpinHandler(), FromMicros(2), 1.0);
  fleet.Start();

  constexpr uint64_t kTotal = 600;
  SubmitAndDrain(fleet, kTotal, FromMicros(2));
  fleet.Stop();

  const FleetClientReport report = fleet.client_report();
  EXPECT_EQ(report.submitted, kTotal);
  EXPECT_EQ(report.dispatched + report.dispatch_drops, kTotal);
  // At this trivial load, effectively everything comes back; allow for
  // scheduler-side drops but require real throughput.
  EXPECT_GT(report.responses, kTotal / 2);
  EXPECT_GT(report.overall.Count(), 0u);
  // Spin time is a lower bound on client-observed latency.
  EXPECT_GE(report.latency.at(1).Min(), FromMicros(2));
}

TEST(FleetRuntime, RoundRobinSpreadsAcrossServers) {
  FleetRuntime fleet(SmallFleetRuntime(FleetPolicyKind::kRoundRobin));
  fleet.RegisterType(1, "SPIN", MakeSpinHandler(), FromMicros(1), 1.0);
  fleet.Start();
  SubmitAndDrain(fleet, 400, FromMicros(1));
  fleet.Stop();

  const FleetClientReport report = fleet.client_report();
  const uint64_t a = fleet.dispatched(0);
  const uint64_t b = fleet.dispatched(1);
  EXPECT_EQ(a + b, report.dispatched);
  // Round-robin alternates, so the split is even up to dispatch drops.
  EXPECT_LE(a > b ? a - b : b - a, report.dispatch_drops + 1);
  EXPECT_GT(a, 0u);
  EXPECT_GT(b, 0u);
}

TEST(FleetRuntime, FleetAdminPlaneServesAggregation) {
  FleetRuntimeConfig config = SmallFleetRuntime(FleetPolicyKind::kPowerOfTwo);
  config.admin.enabled = true;  // port 0 = ephemeral
  FleetRuntime fleet(config);
  fleet.RegisterType(1, "SPIN", MakeSpinHandler(), FromMicros(1), 1.0);
  fleet.Start();
  ASSERT_NE(fleet.admin(), nullptr);
  ASSERT_GT(fleet.admin_port(), 0);
  SubmitAndDrain(fleet, 200, FromMicros(1));

  const std::string fleet_json =
      HttpRequest(fleet.admin_port(), "GET", "/fleet.json");
  EXPECT_EQ(Status(fleet_json), 200);
  EXPECT_NE(fleet_json.find("application/json"), std::string::npos);
  EXPECT_NE(Body(fleet_json).find("\"policy\":\"po2c\""), std::string::npos);
  EXPECT_NE(Body(fleet_json).find("\"num_servers\":2"), std::string::npos);
  EXPECT_NE(Body(fleet_json).find("\"servers\":["), std::string::npos);

  const std::string metrics =
      HttpRequest(fleet.admin_port(), "GET", "/metrics");
  EXPECT_EQ(Status(metrics), 200);
  EXPECT_NE(Body(metrics).find("psp_fleet_servers 2"), std::string::npos);
  EXPECT_NE(Body(metrics).find("server=\"0\""), std::string::npos);
  EXPECT_NE(Body(metrics).find("server=\"1\""), std::string::npos);
  EXPECT_NE(Body(metrics).find("server=\"merged\""), std::string::npos);

  // /snapshot.json serves the merged rollup (counters summed across servers).
  const std::string snapshot =
      HttpRequest(fleet.admin_port(), "GET", "/snapshot.json");
  EXPECT_EQ(Status(snapshot), 200);
  EXPECT_NE(Body(snapshot).find("\"counters\""), std::string::npos);
  fleet.Stop();
}

TEST(FleetRuntime, SingleNodeAdminHasNoFleetEndpoint) {
  // A plain Persephone admin plane (no fleet hooks) 404s on /fleet.json.
  AdminConfig config;
  config.enabled = true;
  AdminHooks hooks;
  hooks.snapshot = [] { return TelemetrySnapshot{}; };
  AdminServer server(config, std::move(hooks));
  ASSERT_EQ(server.Start(), "");
  EXPECT_EQ(Status(HttpRequest(server.port(), "GET", "/fleet.json")), 404);
  server.Stop();
}

TEST(FleetRuntime, RejectsInvalidConfig) {
  FleetRuntimeConfig bad = SmallFleetRuntime(FleetPolicyKind::kRandom);
  bad.ingress_depth = 1000;  // not a power of two
  EXPECT_THROW(FleetRuntime{bad}, std::invalid_argument);

  FleetRuntimeConfig zero = SmallFleetRuntime(FleetPolicyKind::kRandom);
  zero.num_servers = 0;
  EXPECT_THROW(FleetRuntime{zero}, std::invalid_argument);
}

TEST(FleetRuntime, OversizedPayloadIsRefusedAtSubmit) {
  FleetRuntime fleet(SmallFleetRuntime(FleetPolicyKind::kRandom));
  fleet.RegisterType(1, "SPIN", MakeSpinHandler(), FromMicros(1), 1.0);
  fleet.Start();
  std::byte big[FleetRuntime::kMaxInlinePayload + 1] = {};
  EXPECT_FALSE(fleet.Submit(1, 0, big, sizeof(big)));
  EXPECT_EQ(fleet.client_report().submitted, 0u);
  fleet.Stop();
}

}  // namespace
}  // namespace psp
