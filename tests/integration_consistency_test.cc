// Cross-cutting integration matrix: every (policy × paper workload) pair at
// moderate load must satisfy the universal invariants — request conservation,
// slowdown ≥ ~1, per-type mix matching the spec, no drops below saturation.
#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "src/sim/cluster.h"
#include "src/sim/policies/c_fcfs.h"
#include "src/sim/policies/d_fcfs.h"
#include "src/sim/policies/drr.h"
#include "src/sim/policies/oracle_policies.h"
#include "src/sim/policies/persephone.h"
#include "src/sim/policies/time_sharing.h"
#include "src/sim/policies/work_stealing.h"

namespace psp {
namespace {

struct Combo {
  std::string policy;
  std::string workload;
};

using Factory = std::function<std::unique_ptr<SchedulingPolicy>()>;

Factory FactoryFor(const std::string& name) {
  if (name == "c-fcfs") {
    return [] { return std::make_unique<CentralFcfsPolicy>(); };
  }
  if (name == "d-fcfs") {
    return [] { return std::make_unique<DecentralizedFcfsPolicy>(); };
  }
  if (name == "work-stealing") {
    return [] { return std::make_unique<WorkStealingPolicy>(); };
  }
  if (name == "shinjuku") {
    return [] {
      return std::make_unique<TimeSharingPolicy>(TimeSharingOptions{});
    };
  }
  if (name == "sjf") {
    return [] { return std::make_unique<ShortestJobFirstPolicy>(); };
  }
  if (name == "edf") {
    return [] { return std::make_unique<EarliestDeadlineFirstPolicy>(10.0); };
  }
  if (name == "drr") {
    return [] { return std::make_unique<DeficitRoundRobinPolicy>(); };
  }
  if (name == "static-partition") {
    return [] { return std::make_unique<StaticPartitionPolicy>(); };
  }
  // darc
  return [] {
    PersephoneOptions o;
    o.scheduler.mode = PolicyMode::kDarc;
    return std::make_unique<PersephonePolicy>(o);
  };
}

WorkloadSpec WorkloadFor(const std::string& name) {
  if (name == "high-bimodal") {
    return HighBimodal();
  }
  if (name == "extreme-bimodal") {
    return ExtremeBimodal();
  }
  if (name == "tpcc") {
    return TpccMix();
  }
  if (name == "fb-usr") {
    return FacebookUsrLike();
  }
  return RocksDbMix();
}

class ConsistencyMatrix
    : public ::testing::TestWithParam<std::tuple<const char*, const char*>> {};

TEST_P(ConsistencyMatrix, UniversalInvariantsHold) {
  const auto [policy_name, workload_name] = GetParam();
  const WorkloadSpec workload = WorkloadFor(workload_name);
  constexpr uint32_t kWorkers = 8;
  ClusterConfig config;
  config.num_workers = kWorkers;
  config.rate_rps = 0.55 * workload.PeakLoadRps(kWorkers);
  config.duration = 80 * kMillisecond;
  config.net_one_way = 5 * kMicrosecond;
  config.seed = 21;

  ClusterEngine engine(workload, config, FactoryFor(policy_name)());
  engine.Run();
  const Metrics& metrics = engine.metrics();

  // 1. Conservation: nothing lost, nothing duplicated (measured + warmup +
  //    drops == generated; warmup completions are the non-measured rest).
  EXPECT_LE(metrics.TotalCount() + metrics.TotalDrops(), engine.generated());
  EXPECT_GT(metrics.TotalCount(), 0u);

  // 2. At 55% load, a sane policy sheds nothing.
  EXPECT_EQ(metrics.TotalDrops(), 0u)
      << policy_name << " on " << workload_name;

  // 3. Latency ≥ service + RTT: slowdown strictly above 1 even at p50 is not
  //    guaranteed (network adds a constant), but p0 latency of each type must
  //    be at least its fixed service time + RTT.
  for (const auto& type : workload.types()) {
    const Nanos floor_lat = FromMicros(type.mean_us) + 10 * kMicrosecond;
    EXPECT_GE(metrics.TypeLatency(type.wire_id, 0.0) + 1000, floor_lat)
        << policy_name << "/" << workload_name << " type " << type.name;
  }

  // 4. Observed mix matches the spec's ratios within 3 points.
  for (const auto& type : workload.types()) {
    const double observed =
        static_cast<double>(metrics.TypeCount(type.wire_id)) /
        static_cast<double>(metrics.TotalCount());
    EXPECT_NEAR(observed, type.ratio, 0.03)
        << policy_name << "/" << workload_name << " type " << type.name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ConsistencyMatrix,
    ::testing::Combine(::testing::Values("c-fcfs", "d-fcfs", "work-stealing",
                                         "shinjuku", "sjf", "edf", "drr",
                                         "static-partition", "darc"),
                       ::testing::Values("high-bimodal", "extreme-bimodal",
                                         "tpcc", "rocksdb", "fb-usr")),
    [](const auto& info) {
      std::string name = std::string(std::get<0>(info.param)) + "_" +
                         std::get<1>(info.param);
      for (auto& c : name) {
        if (c == '-') {
          c = '_';
        }
      }
      return name;
    });

}  // namespace
}  // namespace psp
