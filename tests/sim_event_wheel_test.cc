// Adversarial tests for the hierarchical timer-wheel backend and the
// wheel/heap selection layer (src/sim/event_queue.h): far-future horizons
// that land in the top levels, multi-level cascade correctness, the same-tick
// FIFO golden run against both backends, a large randomized differential
// (heap and wheel must produce identical pop sequences), auto-selection
// migration in both directions, and the bounded-peek regression (scheduling
// into the gap RunUntil stopped in must not land behind the wheel).
#include "src/sim/event_queue.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

namespace psp {
namespace {

// Records its id into a shared order log — the probe used by every test to
// observe the exact execution sequence.
struct Rec {
  std::vector<uint64_t>* out;
  uint64_t id;
  void operator()() const { out->push_back(id); }
};

TEST(WheelBackend, FarFutureHorizonsExecuteInOrder) {
  // Times spanning every wheel level, including ones only the top levels can
  // index (there is no overflow list: 8 one-byte levels cover all 64 bits).
  const std::vector<Nanos> times = {
      (Nanos{1} << 62),      1,    (Nanos{1} << 50), 255,  (Nanos{1} << 40),
      256,                   0,    (Nanos{1} << 30), 257,  65536,
      (Nanos{1} << 20) + 17, 4096, (Nanos{1} << 45), 2,
  };
  Simulation sim(EngineBackend::kWheel);
  std::vector<uint64_t> order;
  for (size_t i = 0; i < times.size(); ++i) {
    sim.ScheduleAt(times[i], Rec{&order, i});
  }
  sim.RunToCompletion();
  ASSERT_EQ(order.size(), times.size());
  std::vector<Nanos> sorted = times;
  std::sort(sorted.begin(), sorted.end());
  for (size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(times[order[i]], sorted[i]) << "position " << i;
  }
  EXPECT_EQ(sim.Now(), Nanos{1} << 62);
  // The far events started at high levels, so reaching them must cascade.
  EXPECT_GT(sim.wheel_cascades(), 0u);
  EXPECT_GT(sim.wheel_rollovers(), 0u);
}

TEST(WheelBackend, MultiLevelCascadePreservesTotalOrder) {
  // A few thousand events spread over a ~2^26-tick horizon: every one is
  // inserted at level 2-3 and must pour down through the intermediate levels
  // before it can run.
  constexpr uint64_t kEvents = 5000;
  Simulation sim(EngineBackend::kWheel);
  std::vector<uint64_t> order;
  std::vector<Nanos> times(kEvents);
  for (uint64_t i = 0; i < kEvents; ++i) {
    times[i] = static_cast<Nanos>((i * 2654435761u) % (uint64_t{1} << 26));
    sim.ScheduleAt(times[i], Rec{&order, i});
  }
  sim.RunToCompletion();
  ASSERT_EQ(order.size(), kEvents);
  for (size_t i = 1; i < order.size(); ++i) {
    ASSERT_LE(times[order[i - 1]], times[order[i]]) << "position " << i;
  }
  EXPECT_EQ(sim.executed_events(), kEvents);
  EXPECT_GT(sim.wheel_cascades(), kEvents / 2);  // deep inserts all cascade
}

// The FIFO golden: three ticks' handlers scheduled interleaved; both
// backends must drain each tick in schedule order — the exact sequence the
// determinism goldens (p99.9 replays, fleet byte-equality) depend on.
void RunFifoGolden(EngineBackend backend) {
  Simulation sim(backend);
  std::vector<uint64_t> order;
  constexpr uint64_t kPerTick = 100;
  const Nanos ticks[3] = {40, 10, 20};
  for (uint64_t i = 0; i < kPerTick; ++i) {
    for (uint64_t t = 0; t < 3; ++t) {
      sim.ScheduleAt(ticks[t], Rec{&order, t * kPerTick + i});
    }
  }
  sim.RunToCompletion();
  ASSERT_EQ(order.size(), 3 * kPerTick);
  // Drain order: tick 10 (ids 100..199), tick 20 (200..299), tick 40 (0..99),
  // each in schedule (id) order.
  const uint64_t tick_base[3] = {1 * kPerTick, 2 * kPerTick, 0 * kPerTick};
  for (uint64_t t = 0; t < 3; ++t) {
    for (uint64_t i = 0; i < kPerTick; ++i) {
      ASSERT_EQ(order[t * kPerTick + i], tick_base[t] + i)
          << "backend " << EngineBackendName(backend) << " tick group " << t
          << " position " << i;
    }
  }
}

TEST(WheelBackend, SameTickFifoGoldenOnHeap) {
  RunFifoGolden(EngineBackend::kHeap);
}
TEST(WheelBackend, SameTickFifoGoldenOnWheel) {
  RunFifoGolden(EngineBackend::kWheel);
}

// Randomized differential: 1e6 mixed schedules — heavy same-tick ties,
// short-horizon churn, mid-range spreads, and deep-cascade far futures,
// interleaved with partial RunUntil drains — must produce the identical
// execution sequence on both backends.
std::vector<uint64_t> RunMixedWorkload(EngineBackend backend) {
  constexpr uint64_t kBatches = 100;
  constexpr uint64_t kPerBatch = 10000;  // 1e6 events total
  Simulation sim(backend);
  std::vector<uint64_t> order;
  order.reserve(kBatches * kPerBatch);
  uint64_t lcg = 0x853c49e6748fea9bull;
  const auto next = [&lcg] {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    return lcg;
  };
  uint64_t id = 0;
  for (uint64_t b = 0; b < kBatches; ++b) {
    const Nanos base = sim.Now();
    for (uint64_t i = 0; i < kPerBatch; ++i) {
      const uint64_t r = next();
      const uint64_t pick = r & 3;
      Nanos t = base;
      if (pick == 0) {
        t += static_cast<Nanos>((r >> 8) % 16);  // heavy FIFO ties
      } else if (pick == 1) {
        t += static_cast<Nanos>((r >> 8) % 4096);  // levels 0-1
      } else if (pick == 2) {
        t += static_cast<Nanos>((r >> 8) % (uint64_t{1} << 20));  // level 2-3
      } else {
        t += static_cast<Nanos>((r >> 8) % (uint64_t{1} << 34));  // deep
      }
      sim.ScheduleAt(t, Rec{&order, id++});
    }
    // Partial drain: far events stay pending across batches, so later
    // batches schedule *around* older high-level entries.
    sim.RunUntil(base + static_cast<Nanos>(next() % (uint64_t{1} << 22)));
  }
  sim.RunToCompletion();
  return order;
}

TEST(WheelBackend, RandomizedDifferentialMatchesHeap) {
  const std::vector<uint64_t> heap_order =
      RunMixedWorkload(EngineBackend::kHeap);
  const std::vector<uint64_t> wheel_order =
      RunMixedWorkload(EngineBackend::kWheel);
  ASSERT_EQ(heap_order.size(), wheel_order.size());
  ASSERT_EQ(heap_order.size(), 1000000u);
  // Element-wise loop instead of EXPECT_EQ on the vectors: on mismatch this
  // reports the first diverging position, not a 1e6-element dump.
  for (size_t i = 0; i < heap_order.size(); ++i) {
    ASSERT_EQ(heap_order[i], wheel_order[i]) << "first divergence at " << i;
  }
}

// Regression: RunUntil's peek must not advance the wheel past `until`. If it
// did, an event scheduled afterwards into [until, next-pending) would land
// behind the wheel and be lost or misordered.
TEST(WheelBackend, ScheduleIntoRunUntilGapStaysOrdered) {
  Simulation sim(EngineBackend::kWheel);
  std::vector<uint64_t> order;
  sim.ScheduleAt(1000, Rec{&order, 0});
  sim.RunUntil(100);  // peeks the 1000-tick event, runs nothing
  EXPECT_EQ(sim.Now(), 100);
  EXPECT_TRUE(order.empty());
  sim.ScheduleAt(500, Rec{&order, 1});  // into the gap the peek spanned
  sim.ScheduleAt(200, Rec{&order, 2});
  sim.RunToCompletion();
  EXPECT_EQ(order, (std::vector<uint64_t>{2, 1, 0}));
  EXPECT_EQ(sim.Now(), 1000);
}

// Same regression across a level boundary: the pending event sits in a
// higher level, so the bounded peek must also stop mid-cascade.
TEST(WheelBackend, ScheduleIntoGapAcrossLevelBoundary) {
  Simulation sim(EngineBackend::kWheel);
  std::vector<uint64_t> order;
  sim.ScheduleAt(70000, Rec{&order, 0});  // level 2 relative to tick 0
  sim.RunUntil(100);
  sim.ScheduleAt(300, Rec{&order, 1});
  sim.RunUntil(400);
  EXPECT_EQ(order, (std::vector<uint64_t>{1}));
  sim.ScheduleAt(65536, Rec{&order, 2});
  sim.RunToCompletion();
  EXPECT_EQ(order, (std::vector<uint64_t>{1, 2, 0}));
}

// Self-rescheduling handler with a far-future stride: keeps the wheel
// cascading in steady state.
struct FarChain {
  Simulation* sim;
  uint64_t* fired;
  Nanos stride;
  void operator()() const {
    ++*fired;
    sim->ScheduleAfter(stride, *this);
  }
};

TEST(WheelBackend, SteadyStateCascadesDoNotAllocate) {
  Simulation sim(EngineBackend::kWheel);
  uint64_t fired = 0;
  constexpr uint64_t kPending = 64;
  sim.Reserve(kPending + 8);
  for (uint64_t i = 0; i < kPending; ++i) {
    // Strides up to ~2^24 ticks: every re-arm lands 2-3 levels up and must
    // cascade back down before firing.
    sim.ScheduleAt(static_cast<Nanos>(1 + i),
                   FarChain{&sim, &fired, static_cast<Nanos>(
                                              (uint64_t{1} << 16) +
                                              i * 257 * 1024)});
  }
  sim.RunUntil(Nanos{1} << 22);  // warmup: reach peak arena footprint
  const uint64_t allocs_before = sim.arena_allocations();
  const uint64_t cascades_before = sim.wheel_cascades();
  sim.RunUntil(Nanos{1} << 26);
  EXPECT_EQ(sim.arena_allocations(), allocs_before)
      << "wheel path must be allocation-free in steady state";
  EXPECT_GT(sim.wheel_cascades(), cascades_before);
  EXPECT_GT(fired, kPending);
}

// Auto mode: dense short-horizon schedules keep the wheel; a sparse
// population spread over a huge horizon migrates to the heap; dense traffic
// afterwards migrates back. Both migrations preserve ordering.
TEST(WheelBackend, AutoSelectsWheelForDenseSchedules) {
  Simulation sim;  // kAuto
  EXPECT_TRUE(sim.wheel_active());
  std::vector<uint64_t> order;
  for (uint64_t i = 0; i < 4096; ++i) {
    sim.ScheduleAt(sim.Now() + static_cast<Nanos>(i % 100),
                   Rec{&order, i});
    if (i % 7 == 0) {
      sim.RunUntil(sim.Now() + 3);
    }
  }
  sim.RunToCompletion();
  EXPECT_TRUE(sim.wheel_active());
  EXPECT_EQ(sim.backend_switches(), 0u);
}

TEST(WheelBackend, AutoMigratesToHeapForSparseHorizonsAndBack) {
  Simulation sim;  // kAuto
  uint64_t fired = 0;
  // Phase 1: four pending events re-arming ~2^30 ticks out — mean span huge
  // vs population, so the density heuristic must hand off to the heap.
  for (uint64_t i = 0; i < 4; ++i) {
    sim.ScheduleAt(static_cast<Nanos>(1 + i),
                   FarChain{&sim, &fired,
                            static_cast<Nanos>((uint64_t{1} << 30) + i)});
  }
  while (sim.executed_events() < 2048) {
    sim.RunUntil(sim.Now() + (Nanos{1} << 31));
  }
  EXPECT_FALSE(sim.wheel_active());
  EXPECT_GE(sim.backend_switches(), 1u);
  const uint64_t switches_after_sparse = sim.backend_switches();

  // Phase 2: a dense burst (2K events within a 256-tick window) must bring
  // the wheel back, and the mixed pending set must still drain in order.
  std::vector<uint64_t> order;
  const Nanos base = sim.Now();
  for (uint64_t i = 0; i < 2048; ++i) {
    sim.ScheduleAt(base + static_cast<Nanos>(i % 256), Rec{&order, i});
  }
  EXPECT_TRUE(sim.wheel_active());
  EXPECT_GT(sim.backend_switches(), switches_after_sparse);
  sim.RunUntil(base + 256);
  ASSERT_EQ(order.size(), 2048u);
  // Within each tick, ids ascend (FIFO survived the heap->wheel migration).
  Nanos last_tick = -1;
  uint64_t last_id = 0;
  for (const uint64_t id : order) {
    const Nanos tick = base + static_cast<Nanos>(id % 256);
    if (tick == last_tick) {
      EXPECT_GT(id, last_id);
    } else {
      EXPECT_GT(tick, last_tick);
    }
    last_tick = tick;
    last_id = id;
  }
}

TEST(WheelBackend, ParseAndNameRoundTrip) {
  EngineBackend backend = EngineBackend::kHeap;
  EXPECT_TRUE(ParseEngineBackend("auto", &backend));
  EXPECT_EQ(backend, EngineBackend::kAuto);
  EXPECT_TRUE(ParseEngineBackend("wheel", &backend));
  EXPECT_EQ(backend, EngineBackend::kWheel);
  EXPECT_TRUE(ParseEngineBackend("heap", &backend));
  EXPECT_EQ(backend, EngineBackend::kHeap);
  EXPECT_FALSE(ParseEngineBackend("calendar", &backend));
  EXPECT_STREQ(EngineBackendName(EngineBackend::kWheel), "wheel");
  EXPECT_STREQ(EngineBackendName(EngineBackend::kHeap), "heap");
  EXPECT_STREQ(EngineBackendName(EngineBackend::kAuto), "auto");
}

// Pinned-heap engines must keep reporting heap as the active backend and
// never touch the wheel counters.
TEST(WheelBackend, PinnedHeapNeverMigrates) {
  Simulation sim(EngineBackend::kHeap);
  EXPECT_FALSE(sim.wheel_active());
  std::vector<uint64_t> order;
  for (uint64_t i = 0; i < 4096; ++i) {
    sim.ScheduleAt(static_cast<Nanos>(i % 50), Rec{&order, i});
  }
  sim.RunToCompletion();
  EXPECT_FALSE(sim.wheel_active());
  EXPECT_STREQ(sim.active_backend_name(), "heap");
  EXPECT_EQ(sim.backend_switches(), 0u);
  EXPECT_EQ(sim.wheel_cascades(), 0u);
  EXPECT_EQ(sim.wheel_rollovers(), 0u);
}

}  // namespace
}  // namespace psp
