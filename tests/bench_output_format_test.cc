// Tests for the bench harness utilities (bench/bench_util.h): table/CSV
// rendering, env knobs, and the SLO sustained-load helper.
#include "bench/bench_util.h"

#include <gtest/gtest.h>

#include <cstdlib>

namespace psp {
namespace bench {
namespace {

TEST(BenchUtil, MaxLoadUnderSloPicksLastPassingPoint) {
  const std::vector<double> loads = {0.2, 0.4, 0.6, 0.8};
  const std::vector<double> slowdowns = {2.0, 5.0, 9.0, 50.0};
  EXPECT_DOUBLE_EQ(MaxLoadUnderSlo(loads, slowdowns, 10.0), 0.6);
  EXPECT_DOUBLE_EQ(MaxLoadUnderSlo(loads, slowdowns, 100.0), 0.8);
  EXPECT_DOUBLE_EQ(MaxLoadUnderSlo(loads, slowdowns, 1.0), 0.0);
}

TEST(BenchUtil, MaxLoadUnderSloIgnoresZeroEntries) {
  // Zero slowdown marks "no data" (e.g. all requests dropped).
  const std::vector<double> loads = {0.2, 0.4};
  const std::vector<double> slowdowns = {0.0, 5.0};
  EXPECT_DOUBLE_EQ(MaxLoadUnderSlo(loads, slowdowns, 10.0), 0.4);
}

TEST(BenchUtil, FmtFormatsPrecision) {
  EXPECT_EQ(Fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Fmt(10.0, 0), "10");
  EXPECT_EQ(FmtMicros(2500, 1), "2.5");
}

TEST(BenchUtil, EnvKnobs) {
  setenv("PSP_BENCH_DURATION_MS", "123", 1);
  EXPECT_EQ(BenchDuration(), 123 * kMillisecond);
  unsetenv("PSP_BENCH_DURATION_MS");
  EXPECT_EQ(BenchDuration(), 250 * kMillisecond);

  setenv("PSP_BENCH_SEED", "999", 1);
  EXPECT_EQ(BenchSeed(), 999u);
  unsetenv("PSP_BENCH_SEED");

  setenv("PSP_BENCH_CSV", "1", 1);
  EXPECT_TRUE(CsvMode());
  setenv("PSP_BENCH_CSV", "0", 1);
  EXPECT_FALSE(CsvMode());
  unsetenv("PSP_BENCH_CSV");
}

TEST(BenchUtil, JsonModeEnvKnob) {
  EXPECT_FALSE(JsonMode());
  setenv("PSP_BENCH_JSON", "1", 1);
  EXPECT_TRUE(JsonMode());
  setenv("PSP_BENCH_JSON", "0", 1);
  EXPECT_FALSE(JsonMode());
  unsetenv("PSP_BENCH_JSON");
}

TEST(BenchUtil, TableToJsonEmitsRowObjects) {
  Table t({"policy", "load", "p999_slowdown"});
  t.AddRow({"darc", "0.6", "4.20"});
  t.AddRow({"c-fcfs", "0.6", "117.00"});
  EXPECT_EQ(t.ToJson(),
            "[\n"
            "  {\"policy\": \"darc\", \"load\": 0.6, \"p999_slowdown\": 4.20},\n"
            "  {\"policy\": \"c-fcfs\", \"load\": 0.6, "
            "\"p999_slowdown\": 117.00}\n"
            "]");
}

TEST(BenchUtil, TableToJsonQuotesNonNumericAndEscapes) {
  Table t({"name \"x\"", "value"});
  t.AddRow({"a\\b", "inf"});
  // "inf" parses via strtod but is not valid JSON: must stay a string.
  EXPECT_EQ(t.ToJson(),
            "[\n"
            "  {\"name \\\"x\\\"\": \"a\\\\b\", \"value\": \"inf\"}\n"
            "]");
}

TEST(BenchUtil, TableToJsonEmptyTable) {
  Table t({"a"});
  EXPECT_EQ(t.ToJson(), "[]");
}

TEST(BenchUtil, SystemPresetsConstruct) {
  // Factory smoke tests: each preset builds a live policy object.
  EXPECT_EQ(MakeDarc()->Name(), "darc");
  EXPECT_EQ(MakeDarcStatic(3)->Name(), "darc-static-3");
  EXPECT_EQ(MakePspCFcfs()->Name(), "psp-c-fcfs");
  EXPECT_EQ(MakeShenangoCFcfs()->Name(), "shenango-ws");
  EXPECT_EQ(MakeShenangoDFcfs()->Name(), "d-FCFS");
  EXPECT_EQ(MakeShinjuku(5 * kMicrosecond, true)->Name(), "shinjuku-mq");
  EXPECT_EQ(MakeShinjuku(5 * kMicrosecond, false)->Name(), "shinjuku-sq");
}

TEST(BenchUtil, ConfigsMatchDesignCalibration) {
  const ClusterConfig ideal = IdealConfig(16, 1e6);
  EXPECT_EQ(ideal.net_one_way, 0);
  EXPECT_EQ(ideal.dispatch_cost, 0);
  const ClusterConfig testbed = TestbedConfig(14, 1e5);
  EXPECT_EQ(testbed.net_one_way, 5 * kMicrosecond);  // 10 µs RTT
  EXPECT_EQ(testbed.dispatch_cost, 100);
  EXPECT_EQ(testbed.completion_cost, 40);
}

}  // namespace
}  // namespace bench
}  // namespace psp
