// Load-generator unit tests against a deliberately stalled server: the
// un-started runtime's NIC RX ring is a tap on exactly what the client sent,
// which pins down the Poisson pacing, the open-loop (drop, don't block)
// contract, and deterministic seeding.
#include "src/runtime/loadgen.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/apps/synthetic.h"
#include "src/net/packet.h"

namespace psp {
namespace {

struct CaptureResult {
  LoadGenReport report;
  std::vector<TypeId> types;       // send order (the RX ring is FIFO)
  std::vector<Nanos> timestamps;   // client_timestamp per send
};

// Runs the load generator against a server whose threads never start, then
// drains the RX ring to recover exactly what was sent. The ring and pool are
// sized to hold the whole schedule, so the capture is complete and the run is
// single-threaded (no tap thread to fall behind under CI load).
CaptureResult RunAgainstStalledServer(uint64_t seed, double rate_rps,
                                      uint64_t total,
                                      size_t nic_queue_depth = 8192) {
  RuntimeConfig config;
  config.num_workers = 1;
  config.nic_queue_depth = nic_queue_depth;
  config.pool_buffers = nic_queue_depth + 1024;
  Persephone server(config);  // never Start()ed

  LoadGenConfig lg;
  lg.rate_rps = rate_rps;
  lg.total_requests = total;
  lg.seed = seed;
  lg.drain_timeout = 20 * kMillisecond;
  LoadGenerator gen(&server,
                    {MakeSpinSpec(1, "SHORT", 0.7, FromMicros(1)),
                     MakeSpinSpec(2, "LONG", 0.3, FromMicros(10))},
                    lg);

  CaptureResult result;
  result.report = gen.Run();
  PacketRef pkt;
  while (server.nic().PollRx(0, &pkt)) {
    const auto parsed = ParseRequestPacket(pkt.data, pkt.length);
    if (parsed.has_value()) {
      result.types.push_back(parsed->psp.request_type);
      result.timestamps.push_back(parsed->psp.client_timestamp);
    }
    server.pool().FreeGlobal(pkt.data);
  }
  return result;
}

TEST(LoadGen, PoissonPacingMatchesConfiguredRate) {
  constexpr double kRate = 200000;
  constexpr uint64_t kTotal = 3000;
  const CaptureResult r = RunAgainstStalledServer(/*seed=*/3, kRate, kTotal);
  ASSERT_EQ(r.report.sent, kTotal);
  ASSERT_EQ(r.report.send_drops, 0u);  // the ring held the whole schedule
  ASSERT_EQ(r.timestamps.size(), kTotal);

  std::vector<double> gaps;
  for (size_t i = 1; i < r.timestamps.size(); ++i) {
    gaps.push_back(static_cast<double>(r.timestamps[i] - r.timestamps[i - 1]));
  }
  const double expected = 1e9 / kRate;

  // Open loop never paces faster than configured on average (preemption can
  // only stretch the window, never compress it).
  double mean = 0;
  for (const double g : gaps) {
    mean += g;
  }
  mean /= static_cast<double>(gaps.size());
  EXPECT_GT(mean, expected * 0.6);

  // Distribution-shape assertions need wall-clock fidelity: on a loaded or
  // oversubscribed box the sender is preempted and catches up in bursts that
  // corrupt the gap distribution. Preemption is visible as an outsized gap
  // (a clean Poisson max over 3000 draws is ~ln(3000) ≈ 8 means), so judge
  // the shape only when no scheduler stall is present.
  const double max_gap = *std::max_element(gaps.begin(), gaps.end());
  if (max_gap > 50.0 * expected) {
    GTEST_LOG_(INFO) << "scheduler stall detected (max gap " << max_gap
                     << " ns); skipping pacing-shape assertions";
    return;
  }

  // The median gap tracks the exponential's median (mean * ln 2); unlike the
  // mean it is immune to a rare multi-millisecond scheduler hiccup.
  std::vector<double> sorted = gaps;
  std::nth_element(sorted.begin(), sorted.begin() + sorted.size() / 2,
                   sorted.end());
  const double median = sorted[sorted.size() / 2];
  EXPECT_NEAR(median, expected * std::log(2.0), expected * 0.35);

  // Exponential gaps, not a fixed-interval clock: the coefficient of
  // variation is ~1 (a uniform pacer would be ~0). Hiccups only raise it,
  // so only the lower bound is asserted.
  double var = 0;
  for (const double g : gaps) {
    var += (g - mean) * (g - mean);
  }
  var /= static_cast<double>(gaps.size());
  EXPECT_GT(std::sqrt(var) / mean, 0.5);
}

TEST(LoadGen, OpenLoopDropsInsteadOfBlockingOnStalledConsumer) {
  // The 64-deep RX ring fills almost immediately and stays full. An
  // open-loop generator must finish the whole schedule anyway, counting
  // drops — a closed loop would stall forever waiting for responses.
  constexpr double kRate = 200000;
  constexpr uint64_t kTotal = 2000;
  const CaptureResult r = RunAgainstStalledServer(
      /*seed=*/5, kRate, kTotal, /*nic_queue_depth=*/64);
  EXPECT_EQ(r.report.sent, kTotal);
  EXPECT_GE(r.report.send_drops, kTotal - 64);
  EXPECT_EQ(r.report.received, 0u);
  // The send window is total/rate = 10 ms; the run must end shortly after
  // (send window + drain timeout), not hang on the stalled server.
  EXPECT_GE(r.report.elapsed, static_cast<Nanos>(1e9 * kTotal / kRate));
  EXPECT_LT(r.report.elapsed, 2 * kSecond);
}

TEST(LoadGen, SameSeedReplaysTheSameSchedule) {
  const CaptureResult a = RunAgainstStalledServer(/*seed=*/7, 300000, 2000);
  const CaptureResult b = RunAgainstStalledServer(/*seed=*/7, 300000, 2000);
  ASSERT_EQ(a.report.send_drops, 0u);
  ASSERT_EQ(b.report.send_drops, 0u);
  // The type sequence is a pure function of the seed.
  ASSERT_EQ(a.types.size(), b.types.size());
  EXPECT_EQ(a.types, b.types);

  // And it honors the configured 70/30 mix.
  uint64_t shorts = 0;
  for (const TypeId t : a.types) {
    shorts += (t == 1);
  }
  EXPECT_NEAR(static_cast<double>(shorts) / static_cast<double>(a.types.size()),
              0.7, 0.05);

  const CaptureResult c = RunAgainstStalledServer(/*seed=*/8, 300000, 2000);
  EXPECT_NE(a.types, c.types);
}

}  // namespace
}  // namespace psp
