// TPC-C database tests: the five transaction profiles, consistency
// invariants, codec round trips, and concurrent execution safety.
#include "src/apps/tpcc.h"

#include <gtest/gtest.h>

#include <thread>

namespace psp {
namespace {

TpccScale SmallScale() {
  TpccScale s;
  s.warehouses = 2;
  s.districts_per_warehouse = 3;
  s.customers_per_district = 10;
  s.items = 100;
  return s;
}

TEST(Tpcc, PaymentUpdatesBalancesAndYtd) {
  TpccDb db(SmallScale());
  EXPECT_TRUE(db.Payment({0, 1, 2, 50.0}));
  EXPECT_TRUE(db.Payment({0, 2, 2, 25.0}));
  EXPECT_TRUE(db.CheckYtdConsistency(0));
}

TEST(Tpcc, PaymentRejectsInvalidIds) {
  TpccDb db(SmallScale());
  EXPECT_FALSE(db.Payment({9, 0, 0, 1.0}));
  EXPECT_FALSE(db.Payment({0, 9, 0, 1.0}));
  EXPECT_FALSE(db.Payment({0, 0, 99, 1.0}));
}

TEST(Tpcc, NewOrderCreatesOrderWithTotal) {
  TpccDb db(SmallScale());
  const auto result = db.NewOrder(0, 0, 1, {{3, 2}, {5, 1}});
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->order_id, 1u);
  EXPECT_GT(result->total_amount, 0.0);
  const auto second = db.NewOrder(0, 0, 1, {{4, 1}});
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->order_id, 2u);  // district order ids increase
}

TEST(Tpcc, NewOrderValidatesLines) {
  TpccDb db(SmallScale());
  EXPECT_FALSE(db.NewOrder(0, 0, 0, {}).has_value());
  EXPECT_FALSE(db.NewOrder(0, 0, 0, {{999, 1}}).has_value());
  EXPECT_FALSE(db.NewOrder(0, 0, 0, {{1, 0}}).has_value());
  std::vector<TpccDb::NewOrderLine> too_many(16, {1, 1});
  EXPECT_FALSE(db.NewOrder(0, 0, 0, too_many).has_value());
}

TEST(Tpcc, OrderStatusFindsLastOrder) {
  TpccDb db(SmallScale());
  const auto none = db.OrderStatus(0, 0, 4);
  ASSERT_TRUE(none.has_value());
  EXPECT_EQ(none->order_id, 0u);  // no orders yet

  db.NewOrder(0, 0, 4, {{1, 1}, {2, 2}, {3, 3}});
  const auto status = db.OrderStatus(0, 0, 4);
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->order_id, 1u);
  EXPECT_EQ(status->line_count, 3u);
  EXPECT_GT(status->total_amount, 0.0);
}

TEST(Tpcc, DeliveryProcessesOldestOrderPerDistrict) {
  TpccDb db(SmallScale());
  // Two orders in district 0, one in district 1.
  db.NewOrder(0, 0, 0, {{1, 1}});
  db.NewOrder(0, 0, 1, {{2, 1}});
  db.NewOrder(0, 1, 0, {{3, 1}});
  EXPECT_EQ(db.Delivery(0, 7), 2u);  // one per non-empty district
  EXPECT_EQ(db.Delivery(0, 7), 1u);  // the remaining district-0 order
  EXPECT_EQ(db.Delivery(0, 7), 0u);  // nothing left
}

TEST(Tpcc, StockLevelCountsDistinctLowItems) {
  TpccScale scale = SmallScale();
  TpccDb db(scale);
  db.NewOrder(0, 0, 0, {{1, 5}, {2, 5}});
  // Threshold above every possible quantity (initial stock <= 99 + wrap 91):
  const auto all = db.StockLevel(0, 0, 1000);
  ASSERT_TRUE(all.has_value());
  EXPECT_EQ(*all, 2u);
  // Threshold 0: nothing is below zero.
  const auto none = db.StockLevel(0, 0, 0);
  ASSERT_TRUE(none.has_value());
  EXPECT_EQ(*none, 0u);
}

TEST(Tpcc, StockLevelLooksAtRecentOrdersOnly) {
  TpccDb db(SmallScale());
  for (int i = 0; i < 30; ++i) {
    // Orders over item i % 100; only the last 20 are examined.
    db.NewOrder(0, 0, 0,
                {{static_cast<uint32_t>(i), 1}});
  }
  const auto level = db.StockLevel(0, 0, 1000);
  ASSERT_TRUE(level.has_value());
  EXPECT_EQ(*level, 20u);
}

TEST(Tpcc, DeliveryCreditsCustomerBalance) {
  TpccDb db(SmallScale());
  const auto order = db.NewOrder(0, 0, 3, {{1, 2}});
  ASSERT_TRUE(order.has_value());
  db.Delivery(0, 1);
  // Customer 3's last order is delivered; its total was credited. Verified
  // indirectly through OrderStatus total (balance is internal).
  const auto status = db.OrderStatus(0, 0, 3);
  EXPECT_DOUBLE_EQ(status->total_amount, order->total_amount);
}

TEST(Tpcc, ConcurrentMixedTransactionsStayConsistent) {
  TpccScale scale = SmallScale();
  TpccDb db(scale);
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&db, &scale, t] {
      Rng rng(static_cast<uint64_t>(t) + 100);
      for (int i = 0; i < 2000; ++i) {
        const auto txn = static_cast<TpccTxn>(1 + rng.NextBounded(5));
        const TpccRequest req = MakeRandomTpccRequest(txn, scale, rng);
        std::byte resp[16];
        ExecuteTpccRequest(db, req, resp, sizeof(resp));
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  for (uint32_t w = 0; w < scale.warehouses; ++w) {
    EXPECT_TRUE(db.CheckYtdConsistency(w)) << "warehouse " << w;
  }
}

// --- Codec ----------------------------------------------------------------------

TEST(TpccCodec, RoundTripNewOrder) {
  TpccRequest request;
  request.txn = TpccTxn::kNewOrder;
  request.warehouse = 1;
  request.district = 2;
  request.customer = 3;
  request.lines = {{10, 5}, {20, 1}};
  std::byte buf[256];
  const uint32_t len = EncodeTpccRequest(request, buf, sizeof(buf));
  ASSERT_GT(len, 0u);
  const auto decoded = DecodeTpccRequest(TpccTxn::kNewOrder, buf, len);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->warehouse, 1u);
  EXPECT_EQ(decoded->district, 2u);
  EXPECT_EQ(decoded->customer, 3u);
  ASSERT_EQ(decoded->lines.size(), 2u);
  EXPECT_EQ(decoded->lines[1].item, 20u);
}

TEST(TpccCodec, RejectsTruncated) {
  TpccRequest request;
  request.txn = TpccTxn::kNewOrder;
  request.lines = {{1, 1}};
  std::byte buf[256];
  const uint32_t len = EncodeTpccRequest(request, buf, sizeof(buf));
  EXPECT_FALSE(DecodeTpccRequest(TpccTxn::kNewOrder, buf, len - 4).has_value());
  EXPECT_FALSE(DecodeTpccRequest(TpccTxn::kNewOrder, buf, 3).has_value());
}

TEST(TpccCodec, RandomRequestsAreValidAndExecutable) {
  TpccScale scale = SmallScale();
  TpccDb db(scale);
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    const auto txn = static_cast<TpccTxn>(1 + rng.NextBounded(5));
    const TpccRequest request = MakeRandomTpccRequest(txn, scale, rng);
    std::byte buf[512];
    const uint32_t len = EncodeTpccRequest(request, buf, sizeof(buf));
    ASSERT_GT(len, 0u);
    const auto decoded = DecodeTpccRequest(txn, buf, len);
    ASSERT_TRUE(decoded.has_value());
    std::byte resp[16];
    EXPECT_EQ(ExecuteTpccRequest(db, *decoded, resp, sizeof(resp)), 8u);
  }
}


// --- Spec-detail extensions ---------------------------------------------------

TEST(Tpcc, LastNameSyllableRule) {
  EXPECT_EQ(TpccDb::LastNameFor(0), "BARBARBAR");
  EXPECT_EQ(TpccDb::LastNameFor(371), "PRICALLYOUGHT");
  EXPECT_EQ(TpccDb::LastNameFor(999), "EINGEINGEING");
}

TEST(Tpcc, PaymentByLastNameHitsMedianCustomer) {
  TpccDb db(SmallScale());
  // Customer 5's name under the rule; ids 0..9 exist per district.
  const std::string name = TpccDb::LastNameFor(5);
  EXPECT_TRUE(db.PaymentByLastName(0, 0, name, 10.0));
  EXPECT_FALSE(db.PaymentByLastName(0, 0, "NOSUCHNAME", 10.0));
  EXPECT_TRUE(db.CheckYtdConsistency(0));
}

TEST(Tpcc, RemotePaymentCreditsPayingWarehouse) {
  TpccDb db(SmallScale());
  TpccDb::PaymentParams params{0, 1, 2, 42.0};
  params.customer_warehouse = 1;  // customer lives in warehouse 1
  EXPECT_TRUE(db.Payment(params));
  // Revenue lands at the paying warehouse (0): its ytd must be consistent.
  EXPECT_TRUE(db.CheckYtdConsistency(0));
  EXPECT_TRUE(db.CheckYtdConsistency(1));
  EXPECT_EQ(db.HistorySize(0), 1u);
  EXPECT_EQ(db.HistorySize(1), 0u);
}

TEST(Tpcc, EveryPaymentAppendsHistory) {
  TpccDb db(SmallScale());
  for (int i = 0; i < 25; ++i) {
    db.Payment({0, 0, 0, 1.0});
  }
  EXPECT_EQ(db.HistorySize(0), 25u);
}

TEST(Tpcc, ConcurrentRemotePaymentsDoNotDeadlock) {
  TpccScale scale = SmallScale();
  TpccDb db(scale);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&db, t] {
      for (int i = 0; i < 2000; ++i) {
        TpccDb::PaymentParams params{static_cast<uint32_t>(t % 2), 0, 0, 1.0};
        params.customer_warehouse = (t + 1) % 2;  // always remote
        db.Payment(params);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(db.HistorySize(0) + db.HistorySize(1), 8000u);
  EXPECT_TRUE(db.CheckYtdConsistency(0));
  EXPECT_TRUE(db.CheckYtdConsistency(1));
}

}  // namespace
}  // namespace psp
