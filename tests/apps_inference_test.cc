// GBDT inference engine tests: determinism, prediction bounds, codec, and
// the model-size → service-time relationship the workload relies on.
#include "src/apps/inference.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "src/common/time.h"

namespace psp {
namespace {

std::vector<float> RandomFeatures(uint32_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> features(count);
  for (auto& f : features) {
    f = static_cast<float>(rng.NextDouble());
  }
  return features;
}

TEST(DecisionTree, DeterministicPerSeed) {
  Rng a(7);
  Rng b(7);
  DecisionTree ta(6, 16, a);
  DecisionTree tb(6, 16, b);
  const auto features = RandomFeatures(16, 1);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(ta.Predict(features.data(), features.size()),
              tb.Predict(features.data(), features.size()));
  }
}

TEST(DecisionTree, LeafValuesBounded) {
  Rng rng(3);
  DecisionTree tree(8, 32, rng);
  for (uint64_t s = 0; s < 100; ++s) {
    const auto features = RandomFeatures(32, s);
    const float y = tree.Predict(features.data(), features.size());
    EXPECT_GE(y, -1.0f);
    EXPECT_LE(y, 1.0f);
  }
}

TEST(DecisionTree, MissingFeaturesTreatedAsZero) {
  Rng rng(4);
  DecisionTree tree(4, 32, rng);
  // Predicting with zero features must not crash and must be deterministic.
  const float y1 = tree.Predict(nullptr, 0);
  const float y2 = tree.Predict(nullptr, 0);
  EXPECT_EQ(y1, y2);
}

TEST(GbdtModel, EnsembleSumsTrees) {
  GbdtModel model(100, 6, 16, 11);
  const auto features = RandomFeatures(16, 2);
  const float y = model.Predict(features.data(), features.size());
  // 100 trees each in [-1, 1].
  EXPECT_GE(y, -100.0f);
  EXPECT_LE(y, 100.0f);
  EXPECT_EQ(model.num_trees(), 100u);
}

TEST(GbdtModel, DifferentInputsUsuallyDiffer) {
  GbdtModel model(50, 6, 16, 12);
  const auto a = RandomFeatures(16, 100);
  const auto b = RandomFeatures(16, 200);
  EXPECT_NE(model.Predict(a.data(), a.size()),
            model.Predict(b.data(), b.size()));
}

TEST(GbdtModel, BiggerEnsembleTakesProportionallyLonger) {
  // The workload's premise: service time scales with ensemble size.
  GbdtModel small(32, 8, 32, 5);
  GbdtModel big(2048, 8, 32, 5);
  const auto features = RandomFeatures(32, 9);

  const TscClock& clock = TscClock::Global();
  const auto time_model = [&](const GbdtModel& model) {
    volatile float sink = 0;
    const Nanos start = clock.Now();
    for (int i = 0; i < 50; ++i) {
      sink = sink + model.Predict(features.data(), features.size());
    }
    return clock.Now() - start;
  };
  // Warm both, then measure.
  time_model(small);
  time_model(big);
  const Nanos t_small = time_model(small);
  const Nanos t_big = time_model(big);
  EXPECT_GT(t_big, t_small * 10);  // 64x more trees: at least 10x slower
}

TEST(InferenceCodec, RoundTrip) {
  const auto features = RandomFeatures(8, 3);
  std::byte buf[256];
  const uint32_t len = EncodeInferenceRequest(features.data(), 8, buf,
                                              sizeof(buf));
  ASSERT_EQ(len, 4u + 32u);
  const auto decoded = DecodeInferenceRequest(buf, len);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->feature_count, 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(decoded->features[i], features[static_cast<size_t>(i)]);
  }
}

TEST(InferenceCodec, RejectsTruncated) {
  const auto features = RandomFeatures(8, 3);
  std::byte buf[256];
  const uint32_t len =
      EncodeInferenceRequest(features.data(), 8, buf, sizeof(buf));
  EXPECT_FALSE(DecodeInferenceRequest(buf, len - 1).has_value());
  EXPECT_FALSE(DecodeInferenceRequest(buf, 2).has_value());
  // Capacity too small to encode.
  EXPECT_EQ(EncodeInferenceRequest(features.data(), 8, buf, 8), 0u);
}

TEST(ExecuteInference, WritesPrediction) {
  GbdtModel model(10, 4, 8, 21);
  const auto features = RandomFeatures(8, 4);
  std::byte req[64];
  const uint32_t req_len =
      EncodeInferenceRequest(features.data(), 8, req, sizeof(req));
  const auto decoded = DecodeInferenceRequest(req, req_len);
  std::byte resp[8];
  ASSERT_EQ(ExecuteInference(model, *decoded, resp, sizeof(resp)), 4u);
  float y;
  std::memcpy(&y, resp, 4);
  EXPECT_EQ(y, model.Predict(features.data(), 8));
  EXPECT_EQ(ExecuteInference(model, *decoded, resp, 2), 0u);
}

}  // namespace
}  // namespace psp
