// Focused tests for the simulator's policy implementations: TS preemption
// accounting (both quantum and trigger modes), DRR fairness, the elastic
// allocator, and the work-stealing model.
#include <gtest/gtest.h>

#include <memory>

#include "src/sim/cluster.h"
#include "src/sim/policies/c_fcfs.h"
#include "src/sim/policies/drr.h"
#include "src/sim/policies/elastic.h"
#include "src/sim/policies/time_sharing.h"
#include "src/sim/policies/work_stealing.h"

namespace psp {
namespace {

ClusterConfig IdealConfig(uint32_t workers, double rate, Nanos duration) {
  ClusterConfig c;
  c.num_workers = workers;
  c.rate_rps = rate;
  c.duration = duration;
  c.net_one_way = 0;
  c.dispatch_cost = 0;
  c.completion_cost = 0;
  c.seed = 3;
  return c;
}

// --- Time sharing -----------------------------------------------------------

TEST(TimeSharing, PreemptsLongRequestsUnderLoad) {
  const WorkloadSpec w = HighBimodal();
  TimeSharingOptions o;
  o.quantum = 5 * kMicrosecond;
  o.preempt_overhead = kMicrosecond;
  ClusterEngine engine(
      w, IdealConfig(4, 0.7 * w.PeakLoadRps(4), 100 * kMillisecond),
      std::make_unique<TimeSharingPolicy>(o));
  engine.Run();
  // 100 µs requests at a 5 µs quantum: plenty of preemptions.
  EXPECT_GT(engine.policy().preemptions(), 1000u);
  // All requests still complete despite slicing.
  EXPECT_EQ(engine.metrics().TotalDrops(), 0u);
  EXPECT_GT(engine.metrics().TotalCount(), 0u);
}

TEST(TimeSharing, NoPreemptionWhenQueueEmpty) {
  // A single type at trivially low load: slices end with an empty queue, so
  // the request continues without preemption charges.
  WorkloadSpec w;
  w.name = "longs";
  w.phases.push_back(
      WorkloadPhase{0, {WorkloadType{1, "L", 100.0, 1.0}}, 1.0});
  TimeSharingOptions o;
  ClusterEngine engine(w, IdealConfig(4, 1000.0, 100 * kMillisecond),
                       std::make_unique<TimeSharingPolicy>(o));
  engine.Run();
  EXPECT_EQ(engine.policy().preemptions(), 0u);
  // Latency ≈ service: no overhead charged.
  EXPECT_LT(engine.metrics().TypeLatency(1, 50.0), FromMicros(101));
}

TEST(TimeSharing, PreemptionOverheadStretchesLongs) {
  const WorkloadSpec w = HighBimodal();
  const double rate = 0.6 * w.PeakLoadRps(8);
  TimeSharingOptions expensive;
  expensive.preempt_overhead = 2 * kMicrosecond;
  TimeSharingOptions free_preempt;
  free_preempt.preempt_overhead = 0;

  ClusterEngine a(w, IdealConfig(8, rate, 100 * kMillisecond),
                  std::make_unique<TimeSharingPolicy>(expensive));
  a.Run();
  ClusterEngine b(w, IdealConfig(8, rate, 100 * kMillisecond),
                  std::make_unique<TimeSharingPolicy>(free_preempt));
  b.Run();
  // Paper §5.4.2: preemption overheads land on the long requests.
  EXPECT_GT(a.metrics().TypeLatency(2, 99.0),
            b.metrics().TypeLatency(2, 99.0));
}

TEST(TimeSharing, TriggerModePreemptsOnBlockedShort) {
  const WorkloadSpec w = ExtremeBimodal();
  TimeSharingOptions o;
  o.quantum = 0;
  o.trigger_on_block = true;
  o.preempt_overhead = 0;
  ClusterEngine engine(
      w, IdealConfig(4, 0.8 * w.PeakLoadRps(4), 100 * kMillisecond),
      std::make_unique<TimeSharingPolicy>(o));
  engine.Run();
  EXPECT_GT(engine.policy().preemptions(), 0u);
  // Instant, free preemption: shorts barely wait.
  EXPECT_LT(engine.metrics().TypeSlowdown(1, 99.0), 20.0);
}

// --- DRR ----------------------------------------------------------------------

TEST(DeficitRoundRobin, ServesBothTypesProportionally) {
  const WorkloadSpec w = HighBimodal();
  ClusterEngine engine(
      w, IdealConfig(8, 0.6 * w.PeakLoadRps(8), 100 * kMillisecond),
      std::make_unique<DeficitRoundRobinPolicy>());
  engine.Run();
  EXPECT_EQ(engine.metrics().TotalDrops(), 0u);
  EXPECT_GT(engine.metrics().TypeCount(1), 0u);
  EXPECT_GT(engine.metrics().TypeCount(2), 0u);
}

TEST(DeficitRoundRobin, ShortsNotStarvedByLongFlow) {
  // 90% longs: under FIFO shorts queue behind them; DRR's per-flow quanta
  // keep the short flow moving.
  WorkloadSpec w;
  w.name = "skewed";
  w.phases.push_back(WorkloadPhase{0,
                                   {WorkloadType{1, "S", 1.0, 0.1},
                                    WorkloadType{2, "L", 100.0, 0.9}},
                                   1.0});
  const double rate = 0.8 * w.PeakLoadRps(8);
  ClusterEngine drr(w, IdealConfig(8, rate, 100 * kMillisecond),
                    std::make_unique<DeficitRoundRobinPolicy>());
  drr.Run();
  ClusterEngine fifo(w, IdealConfig(8, rate, 100 * kMillisecond),
                     std::make_unique<CentralFcfsPolicy>());
  fifo.Run();
  EXPECT_LE(drr.metrics().TypeLatency(1, 99.0),
            fifo.metrics().TypeLatency(1, 99.0));
}

// --- Elastic allocator -----------------------------------------------------------

TEST(ElasticDarc, GrowsUnderLoadAndShrinksAfter) {
  // low -> high -> low load phases.
  WorkloadSpec w = HighBimodal();
  WorkloadPhase base = w.phases[0];
  w.phases.clear();
  base.duration = 150 * kMillisecond;
  base.load_scale = 0.2;
  w.phases.push_back(base);
  base.load_scale = 0.9;
  w.phases.push_back(base);
  base.load_scale = 0.2;
  base.duration = 0;
  w.phases.push_back(base);

  ElasticOptions options;
  options.min_workers = 2;
  options.initial_workers = 2;
  options.allocation_period = 5 * kMillisecond;

  ClusterConfig config =
      IdealConfig(14, HighBimodal().PeakLoadRps(14), 450 * kMillisecond);
  ClusterEngine engine(w, config,
                       std::make_unique<ElasticDarcPolicy>(options));
  auto& policy = static_cast<ElasticDarcPolicy&>(engine.policy());
  engine.Run();

  ASSERT_FALSE(policy.allocation_log().empty());
  uint32_t max_active = options.initial_workers;
  for (const auto& [t, n] : policy.allocation_log()) {
    max_active = std::max(max_active, n);
  }
  EXPECT_GE(max_active, 10u);  // grew toward the pool during the 90% phase
  EXPECT_LE(policy.active_workers(), 6u);  // released cores afterwards
  EXPECT_GT(engine.metrics().TotalCount(), 0u);
}

// --- Work stealing ----------------------------------------------------------------

TEST(WorkStealing, StealsFromLoadedVictims) {
  const WorkloadSpec w = HighBimodal();
  ClusterEngine engine(
      w, IdealConfig(8, 0.7 * w.PeakLoadRps(8), 100 * kMillisecond),
      std::make_unique<WorkStealingPolicy>());
  engine.Run();
  EXPECT_GT(engine.policy().steals(), 0u);
  EXPECT_EQ(engine.metrics().TotalDrops(), 0u);
}

}  // namespace
}  // namespace psp
