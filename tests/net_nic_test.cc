// Simulated NIC tests: RSS steering into RX queues, queue-full drops,
// TX/egress round trip, malformed-frame handling.
#include "src/net/nic.h"

#include <gtest/gtest.h>

#include <cstring>

namespace psp {
namespace {

class NicTest : public ::testing::Test {
 protected:
  NicTest() : pool_(kMaxPacketSize, 64), nic_(4, 8, &pool_) {}

  PacketRef MakeRequest(uint16_t src_port) {
    std::byte* buf = pool_.AllocGlobal();
    RequestFrame f;
    f.flow = FlowTuple{0x0A000001, 0x0A000002, src_port, 6789};
    f.request_type = 1;
    const uint32_t len = BuildRequestPacket(f, buf, pool_.buffer_size());
    return PacketRef{buf, len};
  }

  MemoryPool pool_;
  SimulatedNic nic_;
};

TEST_F(NicTest, DeliverFromWireSteersByRss) {
  // Same flow always lands on the same RX queue.
  const PacketRef a = MakeRequest(1000);
  const PacketRef b = MakeRequest(1000);
  ASSERT_TRUE(nic_.DeliverFromWire(a));
  ASSERT_TRUE(nic_.DeliverFromWire(b));
  uint32_t first_queue = UINT32_MAX;
  for (uint32_t q = 0; q < nic_.num_queues(); ++q) {
    PacketRef out;
    if (nic_.PollRx(q, &out)) {
      first_queue = q;
      PacketRef second;
      EXPECT_TRUE(nic_.PollRx(q, &second)) << "flow split across queues";
      break;
    }
  }
  EXPECT_NE(first_queue, UINT32_MAX);
}

TEST_F(NicTest, DifferentFlowsSpread) {
  // 64 distinct flows must hit more than one queue.
  bool used[4] = {false, false, false, false};
  for (uint16_t p = 0; p < 32; ++p) {
    nic_.DeliverFromWire(MakeRequest(static_cast<uint16_t>(1000 + p * 13)));
  }
  for (uint32_t q = 0; q < 4; ++q) {
    PacketRef out;
    while (nic_.PollRx(q, &out)) {
      used[q] = true;
      pool_.FreeGlobal(out.data);
    }
  }
  int queues_used = used[0] + used[1] + used[2] + used[3];
  EXPECT_GE(queues_used, 2);
}

TEST_F(NicTest, MalformedFramesDropped) {
  std::byte* buf = pool_.AllocGlobal();
  std::memset(buf, 0xFF, 32);
  EXPECT_FALSE(nic_.DeliverFromWire(PacketRef{buf, 32}));
  EXPECT_EQ(nic_.rx_drops(), 1u);
  pool_.FreeGlobal(buf);
}

TEST_F(NicTest, QueueFullDrops) {
  // Queue depth is 8; the 9th delivery to the same queue must drop.
  uint64_t accepted = 0;
  for (int i = 0; i < 12; ++i) {
    if (nic_.DeliverToQueue(0, MakeRequest(1))) {
      ++accepted;
    }
  }
  EXPECT_EQ(accepted, 8u);
  EXPECT_EQ(nic_.rx_drops(), 4u);
}

TEST_F(NicTest, TransmitReachesEgress) {
  const PacketRef pkt = MakeRequest(7);
  ASSERT_TRUE(nic_.Transmit(2, pkt));
  PacketRef out;
  ASSERT_TRUE(nic_.PollEgress(&out));
  EXPECT_EQ(out.data, pkt.data);
  EXPECT_FALSE(nic_.PollEgress(&out));
}

TEST_F(NicTest, EgressRoundRobinAcrossQueues) {
  const PacketRef a = MakeRequest(1);
  const PacketRef b = MakeRequest(2);
  ASSERT_TRUE(nic_.Transmit(0, a));
  ASSERT_TRUE(nic_.Transmit(3, b));
  PacketRef out1;
  PacketRef out2;
  ASSERT_TRUE(nic_.PollEgress(&out1));
  ASSERT_TRUE(nic_.PollEgress(&out2));
  EXPECT_NE(out1.data, out2.data);
}

TEST_F(NicTest, NetworkContextAllocTransmit) {
  NetworkContext ctx(&nic_, 1);
  std::byte* buf = ctx.AllocBuffer();
  ASSERT_NE(buf, nullptr);
  RequestFrame f;
  f.flow = FlowTuple{1, 2, 3, 4};
  const uint32_t len = BuildRequestPacket(f, buf, pool_.buffer_size());
  EXPECT_TRUE(ctx.Transmit(PacketRef{buf, len}));
  PacketRef out;
  EXPECT_TRUE(nic_.PollEgress(&out));
  ctx.FreeBuffer(out.data);
}

TEST_F(NicTest, DeliverToInvalidQueueDrops) {
  EXPECT_FALSE(nic_.DeliverToQueue(99, MakeRequest(1)));
  EXPECT_EQ(nic_.rx_drops(), 1u);
}

}  // namespace
}  // namespace psp
