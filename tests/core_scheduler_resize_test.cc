// Additional ResizeWorkers edge cases: resizing immediately after a window
// roll must not strand every type on the spillway, and repeated grow/shrink
// cycles keep the scheduler consistent.
#include <gtest/gtest.h>

#include "src/core/scheduler.h"

namespace psp {
namespace {

Request Req(uint64_t id, TypeIndex type, Nanos arrival, Nanos service = 1000) {
  Request r;
  r.id = id;
  r.type = type;
  r.arrival = arrival;
  r.service_demand = service;
  return r;
}

TEST(SchedulerResizeEdge, ResizeRightAfterWindowRollKeepsReservations) {
  SchedulerConfig config;
  config.mode = PolicyMode::kDarc;
  config.num_workers = 8;
  config.profiler.min_window_samples = 50;
  DarcScheduler scheduler(config);
  const TypeIndex s = scheduler.RegisterType(1, "S");
  const TypeIndex l = scheduler.RegisterType(2, "L");

  // Drive through the bootstrap window: 50/50 mix of 1 µs and 100 µs.
  Nanos now = 0;
  for (uint64_t i = 0; i < 80; ++i) {
    const bool is_long = (i & 1) != 0;
    const TypeIndex t = is_long ? l : s;
    const Nanos service = is_long ? FromMicros(100) : FromMicros(1);
    scheduler.Enqueue(Req(i, t, now), now);
    const auto a = scheduler.NextAssignment(now);
    ASSERT_TRUE(a.has_value());
    now += service;
    scheduler.OnCompletion(a->worker, t, service, now);
  }
  ASSERT_TRUE(scheduler.darc_active());
  // The bootstrap transition just rolled the window: this resize must lean
  // on lifetime means rather than the (empty) window.
  scheduler.ResizeWorkers(14);
  EXPECT_EQ(scheduler.reserved_workers_of(s), 1u);
  EXPECT_EQ(scheduler.reserved_workers_of(l), 13u);
}

TEST(SchedulerResizeEdge, RepeatedGrowShrinkCyclesStayConsistent) {
  SchedulerConfig config;
  config.mode = PolicyMode::kDarc;
  config.num_workers = 4;
  DarcScheduler scheduler(config);
  const TypeIndex s = scheduler.RegisterType(1, "S", FromMicros(1), 0.5);
  scheduler.RegisterType(2, "L", FromMicros(100), 0.5);
  scheduler.ActivateSeededReservation();

  Nanos now = 0;
  for (int cycle = 0; cycle < 20; ++cycle) {
    const uint32_t size = cycle % 2 == 0 ? 16 : 3;
    scheduler.ResizeWorkers(size);
    // Work still flows at every size.
    scheduler.Enqueue(Req(static_cast<uint64_t>(cycle), s, now), now);
    const auto a = scheduler.NextAssignment(now);
    ASSERT_TRUE(a.has_value()) << "cycle " << cycle;
    EXPECT_LT(a->worker, size);
    now += 1000;
    scheduler.OnCompletion(a->worker, s, 1000, now);
    EXPECT_EQ(scheduler.idle_workers(), size);
  }
}

TEST(SchedulerResizeEdge, ShrinkToOneWorkerStillServesAllTypes) {
  SchedulerConfig config;
  config.mode = PolicyMode::kDarc;
  config.num_workers = 8;
  DarcScheduler scheduler(config);
  const TypeIndex s = scheduler.RegisterType(1, "S", FromMicros(1), 0.5);
  const TypeIndex l = scheduler.RegisterType(2, "L", FromMicros(100), 0.5);
  scheduler.ActivateSeededReservation();
  scheduler.ResizeWorkers(1);

  Nanos now = 0;
  uint64_t completed = 0;
  for (uint64_t i = 0; i < 20; ++i) {
    scheduler.Enqueue(Req(i, i % 2 == 0 ? s : l, now), now);
    while (auto a = scheduler.NextAssignment(now)) {
      EXPECT_EQ(a->worker, 0u);
      now += 1000;
      scheduler.OnCompletion(a->worker, a->request.type, 1000, now);
      ++completed;
    }
  }
  EXPECT_EQ(completed, 20u);
}

}  // namespace
}  // namespace psp
