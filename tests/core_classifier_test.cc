// Request-classifier tests (§4.2): header-field extraction, the callback
// escape hatch, UNKNOWN handling, and the adversarial random classifier.
#include "src/core/classifier.h"

#include <gtest/gtest.h>

#include <cstring>
#include <map>

#include "src/net/packet.h"

namespace psp {
namespace {

TEST(HeaderFieldClassifier, ReadsTypeFromPspHeader) {
  std::byte frame[256];
  RequestFrame f;
  f.flow = FlowTuple{1, 2, 3, 4};
  f.request_type = 1234;
  const uint32_t len = BuildRequestPacket(f, frame, sizeof(frame));
  ASSERT_GT(len, 0u);
  HeaderFieldClassifier classifier;  // default offset = PspHeader field
  EXPECT_EQ(classifier.Classify(frame + kRequestOffset, len - kRequestOffset),
            1234u);
}

TEST(HeaderFieldClassifier, CustomOffset) {
  std::byte payload[16] = {};
  const TypeId value = 99;
  std::memcpy(payload + 8, &value, sizeof(value));
  HeaderFieldClassifier classifier(8);
  EXPECT_EQ(classifier.Classify(payload, sizeof(payload)), 99u);
}

TEST(HeaderFieldClassifier, ShortPayloadIsUnknown) {
  std::byte payload[4] = {};
  HeaderFieldClassifier classifier;
  EXPECT_EQ(classifier.Classify(payload, sizeof(payload)), kUnknownTypeId);
  EXPECT_EQ(classifier.Classify(nullptr, 100), kUnknownTypeId);
}

TEST(CallbackClassifier, ArbitraryLogic) {
  // A "deep" classifier: first byte odd -> type 1, even -> type 2.
  CallbackClassifier classifier(
      "parity", [](const std::byte* payload, size_t length) -> TypeId {
        if (length == 0) {
          return kUnknownTypeId;
        }
        return (std::to_integer<uint8_t>(payload[0]) & 1) ? 1 : 2;
      });
  std::byte odd[1] = {std::byte{3}};
  std::byte even[1] = {std::byte{4}};
  EXPECT_EQ(classifier.Classify(odd, 1), 1u);
  EXPECT_EQ(classifier.Classify(even, 1), 2u);
  EXPECT_EQ(classifier.Classify(odd, 0), kUnknownTypeId);
  EXPECT_EQ(classifier.Name(), "parity");
}

TEST(RandomClassifier, CoversAllTypesUniformly) {
  RandomClassifier classifier({10, 20, 30}, /*seed=*/7);
  std::map<TypeId, int> counts;
  for (int i = 0; i < 30000; ++i) {
    ++counts[classifier.Classify(nullptr, 0)];
  }
  ASSERT_EQ(counts.size(), 3u);
  for (const TypeId t : {10u, 20u, 30u}) {
    EXPECT_NEAR(counts[t], 10000, 600) << "type " << t;
  }
}

}  // namespace
}  // namespace psp
