// Distribution and RNG statistical sanity tests.
#include "src/common/distributions.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "src/common/rng.h"

namespace psp {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    same += a.Next() == b.Next() ? 1 : 0;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NextBoundedIsUniformish) {
  Rng rng(11);
  std::map<uint64_t, int> counts;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    ++counts[rng.NextBounded(10)];
  }
  for (uint64_t v = 0; v < 10; ++v) {
    EXPECT_NEAR(counts[v], kDraws / 10, kDraws / 100) << "value " << v;
  }
}

TEST(FixedDistribution, AlwaysSame) {
  Rng rng(1);
  FixedDistribution d(12345);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(d.Sample(rng), 12345);
  }
  EXPECT_DOUBLE_EQ(d.MeanNanos(), 12345.0);
}

TEST(ExponentialDistribution, MeanConverges) {
  Rng rng(2);
  ExponentialDistribution d(5000.0);
  double sum = 0;
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) {
    const Nanos v = d.Sample(rng);
    EXPECT_GT(v, 0);
    sum += static_cast<double>(v);
  }
  EXPECT_NEAR(sum / kDraws, 5000.0, 60.0);
}

TEST(LognormalDistribution, MeanConverges) {
  Rng rng(3);
  LognormalDistribution d(10000.0, 0.5);
  double sum = 0;
  constexpr int kDraws = 300000;
  for (int i = 0; i < kDraws; ++i) {
    sum += static_cast<double>(d.Sample(rng));
  }
  EXPECT_NEAR(sum / kDraws, 10000.0, 200.0);
}

TEST(LognormalDistribution, RejectsNonPositiveMean) {
  EXPECT_THROW(LognormalDistribution(0, 1.0), std::invalid_argument);
}

TEST(UniformDistribution, StaysInRange) {
  Rng rng(4);
  UniformDistribution d(100, 200);
  for (int i = 0; i < 10000; ++i) {
    const Nanos v = d.Sample(rng);
    EXPECT_GE(v, 100);
    EXPECT_LE(v, 200);
  }
  EXPECT_DOUBLE_EQ(d.MeanNanos(), 150.0);
}

TEST(DiscreteMixture, NormalisesRatios) {
  const auto mix = MakeModalMixture({{1.0, 50.0}, {100.0, 50.0}});
  EXPECT_DOUBLE_EQ(mix->ratio(0), 0.5);
  EXPECT_DOUBLE_EQ(mix->ratio(1), 0.5);
  // Mean = 0.5×1µs + 0.5×100µs = 50.5 µs.
  EXPECT_NEAR(mix->MeanNanos(), 50500.0, 1.0);
}

TEST(DiscreteMixture, DrawFrequenciesMatchRatios) {
  Rng rng(5);
  const auto mix = MakeModalMixture({{0.5, 99.5}, {500.0, 0.5}});
  int longs = 0;
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) {
    const MixtureDraw draw = mix->SampleDraw(rng);
    if (draw.mode == 1) {
      ++longs;
      EXPECT_EQ(draw.service_time, FromMicros(500.0));
    } else {
      EXPECT_EQ(draw.service_time, FromMicros(0.5));
    }
  }
  EXPECT_NEAR(static_cast<double>(longs) / kDraws, 0.005, 0.001);
}

TEST(DiscreteMixture, RejectsEmptyAndInvalid) {
  EXPECT_THROW(DiscreteMixture({}), std::invalid_argument);
  std::vector<DiscreteMixture::Component> zero = {
      {0.0, std::make_shared<FixedDistribution>(1)}};
  EXPECT_THROW(DiscreteMixture(std::move(zero)), std::invalid_argument);
}

TEST(PoissonProcess, ArrivalsStrictlyIncreaseAtTargetRate) {
  PoissonProcess p(1e6, 42);  // 1M rps
  Nanos prev = 0;
  Nanos last = 0;
  constexpr int kArrivals = 200000;
  for (int i = 0; i < kArrivals; ++i) {
    const Nanos t = p.NextArrival();
    EXPECT_GT(t, prev);
    prev = t;
    last = t;
  }
  // 200k arrivals at 1M rps ≈ 200 ms.
  EXPECT_NEAR(static_cast<double>(last), 200e6, 5e6);
}

TEST(PoissonProcess, GapsAreExponential) {
  PoissonProcess p(1e6, 43);
  // Coefficient of variation of exponential gaps is 1.
  double sum = 0;
  double sum_sq = 0;
  Nanos prev = 0;
  constexpr int kArrivals = 100000;
  for (int i = 0; i < kArrivals; ++i) {
    const Nanos t = p.NextArrival();
    const double gap = static_cast<double>(t - prev);
    prev = t;
    sum += gap;
    sum_sq += gap * gap;
  }
  const double mean = sum / kArrivals;
  const double var = sum_sq / kArrivals - mean * mean;
  EXPECT_NEAR(std::sqrt(var) / mean, 1.0, 0.05);
}

}  // namespace
}  // namespace psp
