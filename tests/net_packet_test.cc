// Wire-format tests: build/parse round trips, malformed-frame rejection,
// in-place response formatting (the zero-copy TX path), RSS hashing.
#include "src/net/packet.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/common/rng.h"

#include "src/net/rss.h"

namespace psp {
namespace {

RequestFrame SampleFrame() {
  RequestFrame f;
  f.flow = FlowTuple{0x0A000001, 0x0A000002, 5555, 6666};
  f.request_type = 3;
  f.request_id = 77;
  f.client_id = 9;
  f.client_timestamp = 123456789;
  return f;
}

TEST(Packet, BuildParseRoundTrip) {
  std::byte buf[kMaxPacketSize];
  const char payload[] = "hello-kv";
  RequestFrame f = SampleFrame();
  f.payload = reinterpret_cast<const std::byte*>(payload);
  f.payload_length = sizeof(payload);

  const uint32_t len = BuildRequestPacket(f, buf, sizeof(buf));
  ASSERT_GT(len, 0u);
  EXPECT_EQ(len, kHeadersSize + sizeof(PspHeader) + sizeof(payload));

  const auto parsed = ParseRequestPacket(buf, len);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->flow.src_addr, f.flow.src_addr);
  EXPECT_EQ(parsed->flow.dst_addr, f.flow.dst_addr);
  EXPECT_EQ(parsed->flow.src_port, f.flow.src_port);
  EXPECT_EQ(parsed->flow.dst_port, f.flow.dst_port);
  EXPECT_EQ(parsed->psp.request_type, 3u);
  EXPECT_EQ(parsed->psp.request_id, 77u);
  EXPECT_EQ(parsed->psp.client_id, 9u);
  EXPECT_EQ(parsed->psp.client_timestamp, 123456789);
  ASSERT_EQ(parsed->payload_length, sizeof(payload));
  EXPECT_EQ(std::memcmp(parsed->payload, payload, sizeof(payload)), 0);
}

TEST(Packet, EmptyPayload) {
  std::byte buf[kMaxPacketSize];
  const uint32_t len = BuildRequestPacket(SampleFrame(), buf, sizeof(buf));
  ASSERT_GT(len, 0u);
  const auto parsed = ParseRequestPacket(buf, len);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->payload_length, 0u);
}

TEST(Packet, RejectsOversizedPayload) {
  std::byte buf[kMaxPacketSize];
  std::vector<std::byte> big(kMaxPacketSize, std::byte{0});
  RequestFrame f = SampleFrame();
  f.payload = big.data();
  f.payload_length = static_cast<uint32_t>(big.size());
  EXPECT_EQ(BuildRequestPacket(f, buf, sizeof(buf)), 0u);
}

TEST(Packet, RejectsTruncatedFrame) {
  std::byte buf[kMaxPacketSize];
  const uint32_t len = BuildRequestPacket(SampleFrame(), buf, sizeof(buf));
  EXPECT_FALSE(ParseRequestPacket(buf, len - 1).has_value());
  EXPECT_FALSE(ParseRequestPacket(buf, 10).has_value());
}

TEST(Packet, RejectsBadMagic) {
  std::byte buf[kMaxPacketSize];
  const uint32_t len = BuildRequestPacket(SampleFrame(), buf, sizeof(buf));
  const uint32_t bad_magic = 0xDEADBEEF;
  std::memcpy(buf + kRequestOffset + offsetof(PspHeader, magic), &bad_magic,
              sizeof(bad_magic));
  EXPECT_FALSE(ParseRequestPacket(buf, len).has_value());
}

TEST(Packet, RejectsNonIpv4EtherType) {
  std::byte buf[kMaxPacketSize];
  const uint32_t len = BuildRequestPacket(SampleFrame(), buf, sizeof(buf));
  auto* eth = reinterpret_cast<EthernetHeader*>(buf);
  eth->ether_type = HostToNet16(0x0806);  // ARP
  EXPECT_FALSE(ParseRequestPacket(buf, len).has_value());
}

TEST(Packet, RejectsNonUdpProtocol) {
  std::byte buf[kMaxPacketSize];
  const uint32_t len = BuildRequestPacket(SampleFrame(), buf, sizeof(buf));
  auto* ip = reinterpret_cast<Ipv4Header*>(buf + sizeof(EthernetHeader));
  ip->protocol = 6;  // TCP
  EXPECT_FALSE(ParseRequestPacket(buf, len).has_value());
}

TEST(Packet, Ipv4ChecksumValidates) {
  std::byte buf[kMaxPacketSize];
  BuildRequestPacket(SampleFrame(), buf, sizeof(buf));
  const auto* ip =
      reinterpret_cast<const Ipv4Header*>(buf + sizeof(EthernetHeader));
  // Recomputing over a header with a valid checksum must reproduce it.
  EXPECT_EQ(Ipv4Checksum(*ip), ip->checksum);
}

TEST(Packet, FormatResponseInPlaceSwapsDirections) {
  std::byte buf[kMaxPacketSize];
  const char payload[] = "req";
  RequestFrame f = SampleFrame();
  f.payload = reinterpret_cast<const std::byte*>(payload);
  f.payload_length = sizeof(payload);
  BuildRequestPacket(f, buf, sizeof(buf));

  const uint32_t resp_len = FormatResponseInPlace(buf, 16);
  EXPECT_EQ(resp_len, kHeadersSize + sizeof(PspHeader) + 16);
  const auto parsed = ParseRequestPacket(buf, resp_len);
  ASSERT_TRUE(parsed.has_value());
  // Source and destination swapped.
  EXPECT_EQ(parsed->flow.src_addr, 0x0A000002u);
  EXPECT_EQ(parsed->flow.dst_addr, 0x0A000001u);
  EXPECT_EQ(parsed->flow.src_port, 6666);
  EXPECT_EQ(parsed->flow.dst_port, 5555);
  // Request identity preserved so the client can match the response.
  EXPECT_EQ(parsed->psp.request_id, 77u);
  EXPECT_EQ(parsed->payload_length, 16u);
  // IP checksum still valid after the rewrite.
  const auto* ip =
      reinterpret_cast<const Ipv4Header*>(buf + sizeof(EthernetHeader));
  EXPECT_EQ(Ipv4Checksum(*ip), ip->checksum);
}

// --- Wire-level trace context ------------------------------------------------

TEST(Packet, TraceFlagsRoundTrip) {
  std::byte buf[kMaxPacketSize];
  RequestFrame f = SampleFrame();
  f.trace_flags = PspHeader::kFlagTraceSampled;
  const uint32_t len = BuildRequestPacket(f, buf, sizeof(buf));
  ASSERT_GT(len, 0u);
  const auto parsed = ParseRequestPacket(buf, len);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->psp.trace_flags, PspHeader::kFlagTraceSampled);
  // Fresh requests carry zero server stamps — the server hasn't seen them.
  EXPECT_EQ(parsed->psp.server_rx_timestamp, 0);
  EXPECT_EQ(parsed->psp.server_tx_timestamp, 0);
}

TEST(Packet, TraceFlagsDefaultUnsampled) {
  std::byte buf[kMaxPacketSize];
  const uint32_t len = BuildRequestPacket(SampleFrame(), buf, sizeof(buf));
  const auto parsed = ParseRequestPacket(buf, len);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->psp.trace_flags, 0u);
}

TEST(Packet, StampServerTimestampsRoundTrip) {
  std::byte buf[kMaxPacketSize];
  RequestFrame f = SampleFrame();
  f.trace_flags = PspHeader::kFlagTraceSampled;
  const uint32_t len = BuildRequestPacket(f, buf, sizeof(buf));
  ASSERT_GT(len, 0u);
  StampServerTimestamps(buf, 111222333, 444555666);
  const auto parsed = ParseRequestPacket(buf, len);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->psp.server_rx_timestamp, 111222333);
  EXPECT_EQ(parsed->psp.server_tx_timestamp, 444555666);
  // Stamping must not disturb neighbouring fields.
  EXPECT_EQ(parsed->psp.request_id, 77u);
  EXPECT_EQ(parsed->psp.client_timestamp, 123456789);
  EXPECT_EQ(parsed->psp.trace_flags, PspHeader::kFlagTraceSampled);
}

TEST(Packet, FormatResponsePreservesTraceContext) {
  std::byte buf[kMaxPacketSize];
  RequestFrame f = SampleFrame();
  f.trace_flags = PspHeader::kFlagTraceSampled;
  BuildRequestPacket(f, buf, sizeof(buf));
  StampServerTimestamps(buf, 1000, 2000);
  // The zero-copy TX rewrite must keep the echoed trace context intact.
  const uint32_t resp_len = FormatResponseInPlace(buf, 8);
  const auto parsed = ParseRequestPacket(buf, resp_len);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->psp.trace_flags, PspHeader::kFlagTraceSampled);
  EXPECT_EQ(parsed->psp.server_rx_timestamp, 1000);
  EXPECT_EQ(parsed->psp.server_tx_timestamp, 2000);
  EXPECT_EQ(parsed->psp.client_timestamp, 123456789);
}

// --- RSS ---------------------------------------------------------------------

TEST(Rss, DeterministicPerFlow) {
  const FlowTuple flow{0xC0A80001, 0xC0A80002, 1234, 80};
  EXPECT_EQ(ToeplitzHash(flow), ToeplitzHash(flow));
}

TEST(Rss, KnownVectorFromMicrosoftSpec) {
  // Canonical verification suite vector: 66.9.149.187:2794 -> 161.142.100.80:1766
  // hashes to 0x51ccc178 with the default key (IPv4 with ports).
  const FlowTuple flow{(66u << 24) | (9u << 16) | (149u << 8) | 187u,
                       (161u << 24) | (142u << 16) | (100u << 8) | 80u, 2794,
                       1766};
  EXPECT_EQ(ToeplitzHash(flow), 0x51ccc178u);
}

TEST(Rss, SpreadsFlowsAcrossQueues) {
  std::vector<int> counts(14, 0);
  for (uint32_t i = 0; i < 10000; ++i) {
    FlowTuple flow{0x0A000000 + i, 0x0A000001, static_cast<uint16_t>(i),
                   6789};
    ++counts[RssQueueForFlow(flow, 14)];
  }
  for (int c : counts) {
    EXPECT_GT(c, 10000 / 14 / 2) << "queue starved";
    EXPECT_LT(c, 10000 / 14 * 2) << "queue overloaded";
  }
}

TEST(Rss, ZeroQueuesHandled) {
  EXPECT_EQ(RssQueueForFlow(FlowTuple{}, 0), 0u);
}


// --- Parser robustness (fuzz-ish) ----------------------------------------------

class PacketFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PacketFuzzTest, RandomBytesNeverCrashParser) {
  Rng rng(GetParam());
  std::byte buf[kMaxPacketSize];
  for (int round = 0; round < 2000; ++round) {
    const auto len = static_cast<uint32_t>(rng.NextBounded(kMaxPacketSize + 1));
    for (uint32_t i = 0; i < len; ++i) {
      buf[i] = static_cast<std::byte>(rng.Next());
    }
    const auto parsed = ParseRequestPacket(buf, len);
    if (parsed.has_value()) {
      // If random bytes happen to parse, the invariants must still hold.
      EXPECT_LE(kRequestOffset + sizeof(PspHeader) + parsed->payload_length,
                len);
      EXPECT_EQ(parsed->psp.magic, PspHeader::kMagic);
    }
  }
}

TEST_P(PacketFuzzTest, CorruptedValidFramesNeverCrash) {
  Rng rng(GetParam() + 1000);
  std::byte buf[kMaxPacketSize];
  RequestFrame f = SampleFrame();
  std::byte payload[100] = {};
  f.payload = payload;
  f.payload_length = sizeof(payload);
  const uint32_t len = BuildRequestPacket(f, buf, sizeof(buf));
  for (int round = 0; round < 2000; ++round) {
    std::byte copy[kMaxPacketSize];
    std::memcpy(copy, buf, len);
    // Flip a handful of random bytes.
    for (int flips = 0; flips < 4; ++flips) {
      copy[rng.NextBounded(len)] = static_cast<std::byte>(rng.Next());
    }
    const auto parsed = ParseRequestPacket(copy, len);
    if (parsed.has_value()) {
      EXPECT_LE(kRequestOffset + sizeof(PspHeader) + parsed->payload_length,
                len);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PacketFuzzTest,
                         ::testing::Range<uint64_t>(1, 6));

}  // namespace
}  // namespace psp
