// Histogram correctness: exactness below the sub-bucket threshold, bounded
// relative error above it, percentile semantics against exact sorted samples.
#include "src/common/histogram.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/common/rng.h"

namespace psp {
namespace {

TEST(Histogram, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.Percentile(99.9), 0);
  EXPECT_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.Min(), 0);
  EXPECT_EQ(h.Max(), 0);
}

TEST(Histogram, SingleValue) {
  Histogram h;
  h.Add(42);
  EXPECT_EQ(h.Count(), 1u);
  EXPECT_EQ(h.Percentile(0), 42);
  EXPECT_EQ(h.Percentile(50), 42);
  EXPECT_EQ(h.Percentile(100), 42);
  EXPECT_EQ(h.Min(), 42);
  EXPECT_EQ(h.Max(), 42);
}

TEST(Histogram, SmallValuesAreExact) {
  Histogram h;
  for (int64_t v = 0; v < 2000; ++v) {
    h.Add(v);
  }
  // Values below 2048 land in exact unit buckets. Nearest-rank p50 of
  // {0..1999} is the 1000th smallest value, i.e. 999.
  EXPECT_EQ(h.Percentile(50), 999);
  EXPECT_EQ(h.Percentile(100), 1999);
  EXPECT_EQ(h.Min(), 0);
}

TEST(Histogram, LargeValuesWithinRelativeError) {
  Histogram h;
  const int64_t value = 123456789;
  h.Add(value);
  const int64_t p = h.Percentile(100);
  EXPECT_LE(std::abs(p - value), value / 1000);  // <0.1% error
}

TEST(Histogram, NegativeValuesClampToZero) {
  Histogram h;
  h.Add(-5);
  EXPECT_EQ(h.Count(), 1u);
  EXPECT_EQ(h.Percentile(100), 0);
}

TEST(Histogram, MeanAndMax) {
  Histogram h;
  h.Add(10);
  h.Add(20);
  h.Add(30);
  EXPECT_DOUBLE_EQ(h.Mean(), 20.0);
  EXPECT_EQ(h.Max(), 30);
  EXPECT_EQ(h.Min(), 10);
}

TEST(Histogram, MergeCombinesDistributions) {
  Histogram a;
  Histogram b;
  for (int i = 0; i < 100; ++i) {
    a.Add(100);
    b.Add(10000);
  }
  a.Merge(b);
  EXPECT_EQ(a.Count(), 200u);
  EXPECT_EQ(a.Percentile(25), 100);
  EXPECT_NEAR(static_cast<double>(a.Percentile(99)), 10000, 15);
  EXPECT_EQ(a.Min(), 100);
}

TEST(Histogram, MergeEmptySourceIsIdentity) {
  Histogram a;
  a.Add(7);
  a.Add(5000);
  Histogram empty;
  a.Merge(empty);
  EXPECT_EQ(a.Count(), 2u);
  EXPECT_EQ(a.Min(), 7);
  EXPECT_NEAR(static_cast<double>(a.Max()), 5000, 5);
  EXPECT_DOUBLE_EQ(a.Mean(), (7.0 + 5000.0) / 2.0);
}

TEST(Histogram, MergeIntoEmptyCopiesSource) {
  Histogram a;
  Histogram b;
  b.Add(10);
  b.Add(300000);  // forces b's bucket array past a's initial size
  a.Merge(b);
  EXPECT_EQ(a.Count(), 2u);
  EXPECT_EQ(a.Min(), 10);
  EXPECT_NEAR(static_cast<double>(a.Percentile(100)), 300000, 300);
}

TEST(Histogram, SelfMergeDoublesCounts) {
  // Fleet aggregation merges histograms generically; merging a histogram
  // into itself must not corrupt it (no resize/iterator hazard).
  Histogram h;
  for (int i = 0; i < 50; ++i) {
    h.Add(100);
    h.Add(1'000'000);
  }
  const int64_t p50_before = h.Percentile(50);
  h.Merge(h);
  EXPECT_EQ(h.Count(), 200u);
  EXPECT_EQ(h.Percentile(50), p50_before);
  EXPECT_EQ(h.Min(), 100);
  EXPECT_DOUBLE_EQ(h.Mean(), (100.0 + 1'000'000.0) / 2.0);
}

TEST(Histogram, MergeMismatchedPopulations) {
  // Merging a tiny histogram into a large one (and vice versa) keeps counts,
  // extremes and percentiles consistent — the per-server populations a fleet
  // rollup merges are rarely the same size.
  Histogram large;
  for (int i = 0; i < 10000; ++i) {
    large.Add(1000);
  }
  Histogram small;
  small.Add(50'000'000);
  large.Merge(small);
  EXPECT_EQ(large.Count(), 10001u);
  EXPECT_EQ(large.Min(), 1000);
  EXPECT_NEAR(static_cast<double>(large.Max()), 50'000'000, 50'000);
  // One sample in ten thousand: the tail percentile must surface it, the
  // median must not move.
  EXPECT_EQ(large.Percentile(50), 1000);
  EXPECT_NEAR(static_cast<double>(large.Percentile(100)), 50'000'000, 50'000);

  Histogram other;
  other.Add(50'000'000);
  Histogram ten;
  for (int i = 0; i < 10; ++i) {
    ten.Add(1000);
  }
  other.Merge(ten);
  EXPECT_EQ(other.Count(), 11u);
  EXPECT_EQ(other.Percentile(50), 1000);
}

TEST(Histogram, ResetClears) {
  Histogram h;
  h.Add(123);
  h.Reset();
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.Percentile(99), 0);
}

class HistogramAccuracyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HistogramAccuracyTest, MatchesExactPercentilesWithinError) {
  Rng rng(GetParam());
  Histogram h;
  std::vector<int64_t> exact;
  // Heavy-tailed-ish sample mix: mostly microseconds, occasional milliseconds.
  for (int i = 0; i < 20000; ++i) {
    int64_t v;
    if (rng.NextBounded(100) == 0) {
      v = static_cast<int64_t>(rng.NextBounded(5'000'000)) + 500'000;
    } else {
      v = static_cast<int64_t>(rng.NextBounded(20'000)) + 500;
    }
    h.Add(v);
    exact.push_back(v);
  }
  std::sort(exact.begin(), exact.end());
  for (const double pct : {50.0, 90.0, 99.0, 99.9}) {
    // Same nearest-rank convention as Histogram::Percentile.
    const size_t target = std::max<size_t>(
        1, static_cast<size_t>(
               pct / 100.0 * static_cast<double>(exact.size()) + 0.5));
    const size_t rank = std::min(exact.size() - 1, target - 1);
    const double truth = static_cast<double>(exact[rank]);
    const double measured = static_cast<double>(h.Percentile(pct));
    EXPECT_NEAR(measured, truth, std::max(2.0, truth * 0.002))
        << "pct=" << pct;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HistogramAccuracyTest,
                         ::testing::Range<uint64_t>(1, 11));

}  // namespace
}  // namespace psp
