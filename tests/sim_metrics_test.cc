// Metrics tests: slowdown semantics, warmup filtering, per-type separation,
// time-series bucketing.
#include "src/sim/metrics.h"

#include <gtest/gtest.h>

namespace psp {
namespace {

TEST(Metrics, SlowdownIsLatencyOverService) {
  Metrics m;
  m.RegisterType(1, "T");
  // latency 5000, service 1000 -> slowdown 5.
  m.RecordCompletion(1, 0, 5000, 1000);
  EXPECT_DOUBLE_EQ(m.TypeSlowdown(1, 50.0), 5.0);
  EXPECT_DOUBLE_EQ(m.OverallSlowdown(50.0), 5.0);
  EXPECT_EQ(m.TypeLatency(1, 50.0), 5000);
}

TEST(Metrics, WarmupSamplesDiscarded) {
  Metrics m(/*warmup_end=*/1000);
  m.RegisterType(1, "T");
  m.RecordCompletion(1, 500, 600, 100);   // sent during warmup: dropped
  m.RecordCompletion(1, 1500, 1600, 100);
  EXPECT_EQ(m.TotalCount(), 1u);
  EXPECT_EQ(m.TypeCount(1), 1u);
}

TEST(Metrics, TypesSeparated) {
  Metrics m;
  m.RegisterType(1, "SHORT");
  m.RegisterType(2, "LONG");
  for (int i = 0; i < 100; ++i) {
    m.RecordCompletion(1, 0, 1000, 1000);
    m.RecordCompletion(2, 0, 200000, 100000);
  }
  EXPECT_DOUBLE_EQ(m.TypeSlowdown(1, 99.0), 1.0);
  EXPECT_DOUBLE_EQ(m.TypeSlowdown(2, 99.0), 2.0);
  EXPECT_EQ(m.TypeName(1), "SHORT");
  EXPECT_EQ(m.TypeName(2), "LONG");
  EXPECT_EQ(m.type_ids().size(), 2u);
}

TEST(Metrics, UnregisteredTypeAutoRegisters) {
  Metrics m;
  m.RecordCompletion(42, 0, 1000, 500);
  EXPECT_EQ(m.TypeCount(42), 1u);
  EXPECT_EQ(m.TypeName(42), "type-42");
}

TEST(Metrics, DropsCounted) {
  Metrics m;
  m.RegisterType(1, "T");
  m.RecordDrop(1);
  m.RecordDrop(1);
  m.RecordDrop(2);
  EXPECT_EQ(m.TypeDrops(1), 2u);
  EXPECT_EQ(m.TypeDrops(2), 1u);
  EXPECT_EQ(m.TotalDrops(), 3u);
}

TEST(Metrics, ThroughputOverWindow) {
  Metrics m;
  m.RegisterType(1, "T");
  for (int i = 0; i < 1000; ++i) {
    m.RecordCompletion(1, i, i + 100, 50);
  }
  // 1000 completions over a 1 ms window = 1 Mrps.
  EXPECT_DOUBLE_EQ(m.ThroughputRps(kMillisecond), 1e6);
  EXPECT_EQ(m.ThroughputRps(0), 0.0);
}

TEST(Metrics, ZeroServiceTimeDoesNotDivide) {
  Metrics m;
  m.RecordCompletion(1, 0, 1000, 0);
  EXPECT_DOUBLE_EQ(m.OverallSlowdown(50.0), 1.0);  // defined as 1x
}

TEST(Metrics, TimeSeriesBucketsBySendTime) {
  Metrics m;
  m.RegisterType(1, "T");
  m.EnableTimeSeries(1000);
  // Bucket 0: two samples; bucket 2: one sample.
  m.RecordCompletion(1, 100, 600, 100);    // latency 500
  m.RecordCompletion(1, 900, 2000, 100);   // latency 1100
  m.RecordCompletion(1, 2500, 2700, 100);  // latency 200
  const auto series = m.TimeSeries(1, 99.0);
  ASSERT_EQ(series.size(), 2u);
  EXPECT_EQ(series[0].start, 0);
  EXPECT_EQ(series[0].count, 2u);
  EXPECT_EQ(series[0].p999_latency, 1100);
  EXPECT_EQ(series[0].p50_latency, 1100);  // rank 1 of 2
  EXPECT_EQ(series[1].start, 2000);
  EXPECT_EQ(series[1].count, 1u);
  EXPECT_EQ(series[1].p999_latency, 200);
  EXPECT_NEAR(series[0].mean_latency, 800.0, 0.1);
}

TEST(Metrics, TimeSeriesDisabledReturnsEmpty) {
  Metrics m;
  m.RecordCompletion(1, 0, 100, 50);
  EXPECT_TRUE(m.TimeSeries(1).empty());
}

TEST(Metrics, MeanLatency) {
  Metrics m;
  m.RecordCompletion(1, 0, 100, 50);
  m.RecordCompletion(1, 0, 300, 50);
  EXPECT_DOUBLE_EQ(m.TypeMeanLatency(1), 200.0);
}

}  // namespace
}  // namespace psp
