// Golden-format + determinism tests for the observability layer:
//   * the catapult/Perfetto exporter's output parses as JSON and honours the
//     trace-event format contract (every event carries ph/ts/pid/tid, and
//     timestamps are monotonic per (pid, tid) track);
//   * two simulator runs with the same seed produce byte-identical trace JSON
//     and byte-identical time-series CSV (the recorder is driven purely by
//     virtual time);
//   * the seeded adaptation run's series actually shows DARC's reservation
//     shares moving at profiler window boundaries (the Fig. 7 dynamic).
#include "src/telemetry/trace_export.h"

#include <gtest/gtest.h>

#include <cctype>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/sim/cluster.h"
#include "src/sim/policies/persephone.h"
#include "src/telemetry/timeseries.h"

namespace psp {
namespace {

// --- A minimal recursive-descent JSON parser -------------------------------
// Just enough to *validate* the exporter's output and walk traceEvents; not a
// general-purpose library (no \uXXXX decoding — escapes are skipped intact).

struct JsonValue {
  enum Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  const JsonValue* Find(const std::string& key) const {
    auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  // Parses the full input; false on any syntax error or trailing garbage.
  bool Parse(JsonValue* out) {
    pos_ = 0;
    if (!ParseValue(out)) {
      return false;
    }
    SkipWs();
    return pos_ == text_.size();
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ParseLiteral(const char* lit) {
    const size_t n = std::string(lit).size();
    if (text_.compare(pos_, n, lit) != 0) {
      return false;
    }
    pos_ += n;
    return true;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) {
      return false;
    }
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        return true;
      }
      if (c == '\\') {
        if (pos_ >= text_.size()) {
          return false;
        }
        out->push_back('\\');
        out->push_back(text_[pos_++]);
        continue;
      }
      out->push_back(c);
    }
    return false;  // unterminated
  }

  bool ParseNumber(double* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      return false;
    }
    try {
      *out = std::stod(text_.substr(start, pos_ - start));
    } catch (...) {
      return false;
    }
    return true;
  }

  bool ParseValue(JsonValue* out) {
    SkipWs();
    if (pos_ >= text_.size()) {
      return false;
    }
    const char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      out->kind = JsonValue::kObject;
      if (Consume('}')) {
        return true;
      }
      while (true) {
        SkipWs();
        std::string key;
        if (!ParseString(&key) || !Consume(':')) {
          return false;
        }
        JsonValue value;
        if (!ParseValue(&value)) {
          return false;
        }
        out->object.emplace(std::move(key), std::move(value));
        if (Consume(',')) {
          continue;
        }
        return Consume('}');
      }
    }
    if (c == '[') {
      ++pos_;
      out->kind = JsonValue::kArray;
      if (Consume(']')) {
        return true;
      }
      while (true) {
        JsonValue value;
        if (!ParseValue(&value)) {
          return false;
        }
        out->array.push_back(std::move(value));
        if (Consume(',')) {
          continue;
        }
        return Consume(']');
      }
    }
    if (c == '"') {
      out->kind = JsonValue::kString;
      return ParseString(&out->str);
    }
    if (c == 't') {
      out->kind = JsonValue::kBool;
      out->boolean = true;
      return ParseLiteral("true");
    }
    if (c == 'f') {
      out->kind = JsonValue::kBool;
      out->boolean = false;
      return ParseLiteral("false");
    }
    if (c == 'n') {
      out->kind = JsonValue::kNull;
      return ParseLiteral("null");
    }
    out->kind = JsonValue::kNumber;
    return ParseNumber(&out->number);
  }

  const std::string& text_;
  size_t pos_ = 0;
};

// --- Seeded adaptation run --------------------------------------------------
// A compact version of the Fig. 7 experiment: two types whose roles flip
// mid-run, DARC profiling live (no seeds), recorder sampling every
// completion so the series is bit-deterministic for the seed.

struct RunArtifacts {
  std::string trace_json;
  std::string series_csv;
  std::vector<IntervalRecord> intervals;
  std::vector<ReservationUpdate> updates;
  uint64_t completed = 0;
};

RunArtifacts RunSeededAdaptation(uint64_t seed) {
  WorkloadSpec workload;
  workload.name = "flip";
  workload.phases.push_back(WorkloadPhase{
      400 * kMillisecond,
      {WorkloadType{1, "A", 100.0, 0.5}, WorkloadType{2, "B", 1.0, 0.5}},
      1.0});
  workload.phases.push_back(WorkloadPhase{
      0,
      {WorkloadType{1, "A", 1.0, 0.5}, WorkloadType{2, "B", 100.0, 0.5}},
      1.0});

  ClusterConfig config;
  config.num_workers = 8;
  config.rate_rps = 0.8 * workload.PeakLoadRps(config.num_workers);
  config.duration = 800 * kMillisecond;
  config.warmup_fraction = 0;
  config.seed = seed;
  config.telemetry.timeseries.enabled = true;
  config.telemetry.timeseries.interval = 50 * kMillisecond;
  config.telemetry.timeseries.slowdown_sample_every = 1;

  PersephoneOptions options;
  options.scheduler.mode = PolicyMode::kDarc;
  options.seed_profiles = false;  // learn from live profiling windows
  options.scheduler.profiler.min_window_samples = 5000;

  ClusterEngine engine(workload, config,
                       std::make_unique<PersephonePolicy>(options));
  engine.Run();

  RunArtifacts out;
  out.trace_json = ExportCatapultTrace(engine.telemetry_snapshot());
  out.series_csv = engine.telemetry().timeseries()->ToCsv();
  out.intervals = engine.telemetry().timeseries()->History();
  out.updates = engine.telemetry().reservation_updates();
  out.completed = engine.metrics().TotalCount();
  return out;
}

// Shared across tests in this file (the sim run is the expensive part);
// NOLINTNEXTLINE: intentionally leaked test fixture.
const RunArtifacts& Artifacts() {
  static const RunArtifacts* artifacts =
      new RunArtifacts(RunSeededAdaptation(/*seed=*/7));
  return *artifacts;
}

// --- Golden format checks ---------------------------------------------------

TEST(TraceExport, OutputParsesAsJson) {
  const RunArtifacts& run = Artifacts();
  ASSERT_GT(run.completed, 0u);

  JsonValue root;
  ASSERT_TRUE(JsonParser(run.trace_json).Parse(&root))
      << "exporter output is not valid JSON";
  ASSERT_EQ(root.kind, JsonValue::kObject);

  const JsonValue* events = root.Find("traceEvents");
  ASSERT_NE(events, nullptr) << "missing traceEvents key";
  ASSERT_EQ(events->kind, JsonValue::kArray);
  EXPECT_FALSE(events->array.empty());
}

TEST(TraceExport, EveryEventCarriesRequiredFields) {
  JsonValue root;
  ASSERT_TRUE(JsonParser(Artifacts().trace_json).Parse(&root));
  const JsonValue* events = root.Find("traceEvents");
  ASSERT_NE(events, nullptr);

  const std::set<std::string> known_phases = {"M", "X", "i", "I",
                                              "C", "b", "e"};
  for (const JsonValue& event : events->array) {
    ASSERT_EQ(event.kind, JsonValue::kObject);
    const JsonValue* ph = event.Find("ph");
    ASSERT_NE(ph, nullptr) << "event missing ph";
    ASSERT_EQ(ph->kind, JsonValue::kString);
    EXPECT_EQ(ph->str.size(), 1u);
    EXPECT_TRUE(known_phases.count(ph->str)) << "unexpected phase " << ph->str;

    const JsonValue* ts = event.Find("ts");
    ASSERT_NE(ts, nullptr) << "event missing ts";
    EXPECT_EQ(ts->kind, JsonValue::kNumber);
    EXPECT_GE(ts->number, 0.0) << "timestamps must be origin-clamped";

    for (const char* key : {"pid", "tid"}) {
      const JsonValue* field = event.Find(key);
      ASSERT_NE(field, nullptr) << "event missing " << key;
      EXPECT_EQ(field->kind, JsonValue::kNumber);
    }
    // Non-metadata events also need a name for the UI.
    if (ph->str != "M") {
      const JsonValue* name = event.Find("name");
      ASSERT_NE(name, nullptr);
      EXPECT_EQ(name->kind, JsonValue::kString);
      EXPECT_FALSE(name->str.empty());
    }
  }
}

TEST(TraceExport, TimestampsAreMonotonicPerTrack) {
  JsonValue root;
  ASSERT_TRUE(JsonParser(Artifacts().trace_json).Parse(&root));
  const JsonValue* events = root.Find("traceEvents");
  ASSERT_NE(events, nullptr);

  std::map<std::pair<long, long>, double> last_ts;
  size_t checked = 0;
  for (const JsonValue& event : events->array) {
    const JsonValue* ph = event.Find("ph");
    ASSERT_NE(ph, nullptr);
    if (ph->str == "M") {
      continue;  // metadata rows are unordered by spec
    }
    const std::pair<long, long> track = {
        static_cast<long>(event.Find("pid")->number),
        static_cast<long>(event.Find("tid")->number)};
    const double ts = event.Find("ts")->number;
    auto it = last_ts.find(track);
    if (it != last_ts.end()) {
      EXPECT_GE(ts, it->second)
          << "non-monotonic ts on track pid=" << track.first
          << " tid=" << track.second;
    }
    last_ts[track] = ts;
    ++checked;
  }
  EXPECT_GT(checked, 0u);
  // Scheduler track (tid 0) and at least one worker track must be present.
  EXPECT_TRUE(last_ts.count({1, 0}));
  EXPECT_GT(last_ts.size(), 1u);
}

TEST(TraceExport, EmptySnapshotStillValid) {
  TelemetrySnapshot empty;
  const std::string json = ExportCatapultTrace(empty);
  JsonValue root;
  ASSERT_TRUE(JsonParser(json).Parse(&root));
  const JsonValue* events = root.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  EXPECT_EQ(events->kind, JsonValue::kArray);
}

// --- Determinism ------------------------------------------------------------

TEST(TraceExport, SeededRunsAreByteIdentical) {
  const RunArtifacts& first = Artifacts();
  const RunArtifacts second = RunSeededAdaptation(/*seed=*/7);

  EXPECT_EQ(first.completed, second.completed);
  ASSERT_EQ(first.series_csv, second.series_csv)
      << "time-series CSV must be bit-deterministic for a fixed seed";
  ASSERT_EQ(first.trace_json, second.trace_json)
      << "trace JSON must be bit-deterministic for a fixed seed";
  EXPECT_FALSE(first.series_csv.empty());
}

TEST(TraceExport, DifferentSeedsDiverge) {
  // Sanity for the identity check above: with a different seed, the arrival
  // process differs and so must the series.
  const RunArtifacts other = RunSeededAdaptation(/*seed=*/8);
  EXPECT_NE(Artifacts().series_csv, other.series_csv);
}

// --- The Fig. 7 dynamic in the series ---------------------------------------

TEST(TraceExport, SeriesShowsReservationSharesChanging) {
  const RunArtifacts& run = Artifacts();
  ASSERT_GE(run.intervals.size(), 8u);

  // The structured update series must show the bootstrap transition plus at
  // least one adaptive update after the phase flip, stamped with the profiler
  // window that triggered it.
  ASSERT_GE(run.updates.size(), 2u);
  for (size_t i = 1; i < run.updates.size(); ++i) {
    EXPECT_GT(run.updates[i].seq, run.updates[i - 1].seq);
    EXPECT_GE(run.updates[i].at, run.updates[i - 1].at);
  }
  for (const ReservationUpdate& update : run.updates) {
    EXPECT_FALSE(update.shares.empty());
  }

  // Updates land inside intervals: the per-interval reservation_updates
  // deltas must add up to the structured series' length.
  uint64_t interval_updates = 0;
  for (const IntervalRecord& interval : run.intervals) {
    interval_updates += interval.reservation_updates;
  }
  EXPECT_EQ(interval_updates, run.updates.size());

  // And the sampled reserved_workers gauge must take at least two distinct
  // values for some type across the run (A's share swaps with B's at the
  // phase flip).
  std::map<uint32_t, std::set<int64_t>> reserved_values;
  for (const IntervalRecord& interval : run.intervals) {
    for (const TypeIntervalStats& stats : interval.types) {
      if (stats.reserved_workers >= 0) {
        reserved_values[stats.type].insert(stats.reserved_workers);
      }
    }
  }
  bool some_type_changed = false;
  for (const auto& [type, values] : reserved_values) {
    if (values.size() >= 2) {
      some_type_changed = true;
    }
  }
  EXPECT_TRUE(some_type_changed)
      << "reserved shares never moved: the adaptation is not visible in the "
         "time-series";

  // Slowdown percentiles were sampled (sample_every = 1).
  uint64_t samples = 0;
  for (const IntervalRecord& interval : run.intervals) {
    for (const TypeIntervalStats& stats : interval.types) {
      samples += stats.slowdown_samples;
    }
  }
  EXPECT_GT(samples, 0u);
}

}  // namespace
}  // namespace psp
