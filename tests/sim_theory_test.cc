// Validation of the discrete-event engine against closed-form queueing
// theory: if the simulator cannot reproduce M/M/1 and M/D/1, none of the
// paper reproductions can be trusted.
#include <gtest/gtest.h>

#include <memory>

#include "src/sim/cluster.h"
#include "src/sim/policies/c_fcfs.h"

namespace psp {
namespace {

ClusterConfig TheoryConfig(uint32_t workers, double rate) {
  ClusterConfig c;
  c.num_workers = workers;
  c.rate_rps = rate;
  c.duration = 2 * kSecond;  // long run for tight confidence
  c.net_one_way = 0;
  c.dispatch_cost = 0;
  c.completion_cost = 0;
  c.seed = 1234;
  return c;
}

WorkloadSpec SingleType(ServiceShape shape, double mean_us) {
  WorkloadSpec w;
  w.name = "theory";
  WorkloadType t{1, "T", mean_us, 1.0, shape};
  w.phases.push_back(WorkloadPhase{0, {t}, 1.0});
  return w;
}

class Mm1Test : public ::testing::TestWithParam<double> {};

TEST_P(Mm1Test, MeanSojournMatchesTheory) {
  // M/M/1: E[T] = 1 / (mu - lambda) = S / (1 - rho).
  const double rho = GetParam();
  const double mean_us = 10.0;
  const double rate = rho * 1e6 / mean_us;  // lambda for one worker

  ClusterEngine engine(SingleType(ServiceShape::kExponential, mean_us),
                       TheoryConfig(1, rate),
                       std::make_unique<CentralFcfsPolicy>());
  engine.Run();
  const double expected_us = mean_us / (1.0 - rho);
  const double measured_us = engine.metrics().TypeMeanLatency(1) / 1e3;
  EXPECT_NEAR(measured_us, expected_us, expected_us * 0.10)
      << "rho=" << rho;
}

INSTANTIATE_TEST_SUITE_P(Loads, Mm1Test, ::testing::Values(0.3, 0.5, 0.7, 0.8));

TEST(Md1Test, MeanWaitMatchesPollaczekKhinchine) {
  // M/D/1: E[W] = rho * S / (2 (1 - rho)); E[T] = E[W] + S.
  const double rho = 0.7;
  const double mean_us = 10.0;
  const double rate = rho * 1e6 / mean_us;

  ClusterEngine engine(SingleType(ServiceShape::kFixed, mean_us),
                       TheoryConfig(1, rate),
                       std::make_unique<CentralFcfsPolicy>());
  engine.Run();
  const double expected_us = mean_us + rho * mean_us / (2.0 * (1.0 - rho));
  const double measured_us = engine.metrics().TypeMeanLatency(1) / 1e3;
  EXPECT_NEAR(measured_us, expected_us, expected_us * 0.08);
}

TEST(MmcTest, ErlangCWaitProbabilityShape) {
  // M/M/4 at rho=0.8: Erlang-C P(wait) ≈ 0.66; mean wait
  // = C(c, a) * S / (c (1 - rho)). We check mean sojourn within 15%.
  const double rho = 0.8;
  const uint32_t c = 4;
  const double mean_us = 10.0;
  const double rate = rho * c * 1e6 / mean_us;

  ClusterEngine engine(SingleType(ServiceShape::kExponential, mean_us),
                       TheoryConfig(c, rate),
                       std::make_unique<CentralFcfsPolicy>());
  engine.Run();

  // Erlang C for c=4, a = rho*c = 3.2.
  const double a = rho * c;
  double sum = 0;
  double term = 1;
  for (uint32_t k = 0; k < c; ++k) {
    if (k > 0) {
      term *= a / k;
    }
    sum += term;
  }
  const double last = term * a / c;
  const double erlang_c = (last / (1 - rho)) / (sum + last / (1 - rho));
  const double expected_us =
      mean_us + erlang_c * mean_us / (c * (1 - rho));
  const double measured_us = engine.metrics().TypeMeanLatency(1) / 1e3;
  EXPECT_NEAR(measured_us, expected_us, expected_us * 0.15);
}

TEST(TailTest, Mm1SojournTailIsExponential) {
  // M/M/1 sojourn time is exponential with rate mu - lambda: its p99 is
  // ln(100) × the mean.
  const double rho = 0.6;
  const double mean_us = 10.0;
  const double rate = rho * 1e6 / mean_us;
  ClusterEngine engine(SingleType(ServiceShape::kExponential, mean_us),
                       TheoryConfig(1, rate),
                       std::make_unique<CentralFcfsPolicy>());
  engine.Run();
  const double mean_sojourn_us = mean_us / (1 - rho);
  const double expected_p99 = mean_sojourn_us * std::log(100.0);
  const double measured_p99 =
      static_cast<double>(engine.metrics().TypeLatency(1, 99.0)) / 1e3;
  EXPECT_NEAR(measured_p99, expected_p99, expected_p99 * 0.12);
}

}  // namespace
}  // namespace psp
