// Fleet simulation: conservation across servers, bit-determinism of the
// fleet snapshot, policy quality ordering, dispatch accounting, and the
// offline introspection artifacts.
#include "src/fleet/fleet_sim.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "src/sim/policies/c_fcfs.h"

namespace psp {
namespace {

FleetSimConfig SmallFleet(uint32_t servers, FleetPolicyKind kind,
                          double load_fraction, uint64_t seed = 42) {
  FleetSimConfig config;
  config.num_servers = servers;
  config.server.num_workers = 8;
  config.duration = 40 * kMillisecond;
  config.warmup_fraction = 0.1;
  config.seed = seed;
  config.policy = FleetPolicyConfig::Default(kind);
  const WorkloadSpec w = HighBimodal();
  config.rate_rps =
      load_fraction * static_cast<double>(servers) * w.PeakLoadRps(8);
  return config;
}

FleetSimulation::PolicyFactory Fcfs() {
  return [](uint32_t) { return std::make_unique<CentralFcfsPolicy>(); };
}

TEST(FleetSim, ConservesRequestsAcrossServers) {
  FleetSimulation fleet(HighBimodal(),
                        SmallFleet(3, FleetPolicyKind::kPowerOfTwo, 0.6),
                        Fcfs());
  fleet.Run();
  ASSERT_GT(fleet.generated(), 1000u);

  // Every generated request was dispatched to exactly one server...
  uint64_t dispatched = 0;
  for (uint32_t i = 0; i < fleet.num_servers(); ++i) {
    EXPECT_EQ(fleet.dispatched(i), fleet.server(i).generated());
    dispatched += fleet.dispatched(i);
  }
  EXPECT_EQ(dispatched, fleet.generated());

  // ...and every dispatched request completed or dropped: the per-server
  // outstanding gauges (maintained by the completion/drop hooks, which fire
  // for warmup requests too) all drain to zero. The engine counters are
  // warmup-filtered, so they cover the measured window only.
  uint64_t completed = 0;
  uint64_t dropped = 0;
  for (uint32_t i = 0; i < fleet.num_servers(); ++i) {
    const TelemetrySnapshot snap = fleet.server(i).telemetry_snapshot();
    completed += snap.counter("engine.completed");
    dropped += snap.counter("engine.dropped");
  }
  EXPECT_LE(completed + dropped, fleet.generated());
  EXPECT_GE(completed + dropped,
            fleet.generated() - fleet.generated() / 5);  // ~10% warmup
  const FleetSnapshot fs = fleet.fleet_snapshot();
  for (uint32_t i = 0; i < fleet.num_servers(); ++i) {
    EXPECT_EQ(fs.gauges.at("fleet.server." + std::to_string(i) +
                           ".outstanding"),
              0);
  }
  // The merged rollup's counters are the per-server sums.
  const TelemetrySnapshot merged = fs.Merged();
  EXPECT_EQ(merged.counter("engine.completed"), completed);
  EXPECT_EQ(merged.counter("engine.dropped"), dropped);
}

TEST(FleetSim, SameSeedRunsAreByteIdentical) {
  const auto run_json = [] {
    FleetSimulation fleet(
        HighBimodal(), SmallFleet(2, FleetPolicyKind::kPowerOfTwo, 0.6, 7),
        Fcfs());
    fleet.Run();
    return fleet.fleet_snapshot().ToJson();
  };
  const std::string a = run_json();
  const std::string b = run_json();
  EXPECT_EQ(a, b);
  EXPECT_GT(a.size(), 1000u);
}

TEST(FleetSim, DifferentSeedsDiverge) {
  FleetSimulation a(HighBimodal(),
                    SmallFleet(2, FleetPolicyKind::kRandom, 0.5, 1), Fcfs());
  FleetSimulation b(HighBimodal(),
                    SmallFleet(2, FleetPolicyKind::kRandom, 0.5, 2), Fcfs());
  a.Run();
  b.Run();
  EXPECT_NE(a.fleet_snapshot().ToJson(), b.fleet_snapshot().ToJson());
}

TEST(FleetSim, ArrivalStreamIsPolicyIndependent) {
  // The arrival process draws from its own rng stream, so every policy sees
  // the same offered trace for a given seed: generated counts match.
  uint64_t generated[2];
  int idx = 0;
  for (const FleetPolicyKind kind :
       {FleetPolicyKind::kRandom, FleetPolicyKind::kShortestQueue}) {
    FleetSimulation fleet(HighBimodal(), SmallFleet(4, kind, 0.6), Fcfs());
    fleet.Run();
    generated[idx++] = fleet.generated();
  }
  EXPECT_EQ(generated[0], generated[1]);
}

TEST(FleetSim, RoundRobinSpreadsDispatchEvenly) {
  FleetSimulation fleet(HighBimodal(),
                        SmallFleet(4, FleetPolicyKind::kRoundRobin, 0.5),
                        Fcfs());
  fleet.Run();
  for (uint32_t i = 0; i < 4; ++i) {
    EXPECT_LE(fleet.dispatched(0) > fleet.dispatched(i)
                  ? fleet.dispatched(0) - fleet.dispatched(i)
                  : fleet.dispatched(i) - fleet.dispatched(0),
              1u);
  }
}

TEST(FleetSim, DepthAwarePoliciesBeatRandomAtHighLoad) {
  // The acceptance bar: po2c and centralized shortest-queue improve fleet
  // p99.9 slowdown over random at 70% fleet load under High Bimodal.
  const auto p999 = [](FleetPolicyKind kind) {
    FleetSimulation fleet(HighBimodal(), SmallFleet(4, kind, 0.7), Fcfs());
    fleet.Run();
    EXPECT_GT(fleet.metrics().TotalCount(), 1000u);
    return fleet.metrics().OverallSlowdown(99.9);
  };
  const double random = p999(FleetPolicyKind::kRandom);
  const double po2c = p999(FleetPolicyKind::kPowerOfTwo);
  const double shortest = p999(FleetPolicyKind::kShortestQueue);
  EXPECT_LE(po2c, random);
  EXPECT_LE(shortest, random);
}

TEST(FleetSim, ShortestQueueBoundedStalenessRefreshesSparingly) {
  // With a 10 µs staleness grid the tracker must refresh at most once per
  // grid period — far fewer times than there are decisions.
  FleetSimConfig config = SmallFleet(4, FleetPolicyKind::kShortestQueue, 0.6);
  FleetSimulation fleet(HighBimodal(), config, Fcfs());
  fleet.Run();
  EXPECT_GT(fleet.depth_refreshes(), 0u);
  EXPECT_LT(fleet.depth_refreshes(), fleet.generated());
  const uint64_t grid_periods = static_cast<uint64_t>(
      config.duration / config.policy.depth_staleness) + 2;
  EXPECT_LE(fleet.depth_refreshes(), grid_periods);
}

TEST(FleetSim, WritesFleetIntrospectionArtifacts) {
  char tmpl[] = "/tmp/psp_fleet_XXXXXX";
  ASSERT_NE(::mkdtemp(tmpl), nullptr);
  const std::string dir = std::string(tmpl) + "/fleet";
  FleetSimConfig config = SmallFleet(2, FleetPolicyKind::kPowerOfTwo, 0.4);
  config.introspect_dir = dir;
  FleetSimulation fleet(HighBimodal(), config, Fcfs());
  fleet.Run();

  const auto slurp = [](const std::string& path) {
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
  };
  const std::string fleet_json = slurp(dir + "/fleet.json");
  EXPECT_NE(fleet_json.find("\"policy\":\"po2c\""), std::string::npos);
  EXPECT_NE(fleet_json.find("\"num_servers\":2"), std::string::npos);
  EXPECT_NE(fleet_json.find("\"merged\":"), std::string::npos);
  EXPECT_EQ(fleet_json, fleet.fleet_snapshot().ToJson());

  const std::string prom = slurp(dir + "/metrics.prom");
  EXPECT_NE(prom.find("psp_fleet_servers 2"), std::string::npos);
  EXPECT_NE(prom.find("server=\"0\""), std::string::npos);
  EXPECT_NE(prom.find("server=\"1\""), std::string::npos);
  EXPECT_NE(prom.find("server=\"merged\""), std::string::npos);

  // Per-server artifacts render alongside (same files the admin plane
  // serves for a single node).
  EXPECT_FALSE(slurp(dir + "/server0/metrics.prom").empty());
  EXPECT_FALSE(slurp(dir + "/server1/snapshot.json").empty());
}

}  // namespace
}  // namespace psp
