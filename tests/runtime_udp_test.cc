// End-to-end tests for the kernel UDP socket ingress (IngressMode::kUdp):
// an external-style client (UdpLoadGenerator over real loopback datagrams)
// drives the full pipeline — recvmmsg net worker → dispatcher → DARC →
// workers → sendmsg egress — and the books must balance. Kept small so they
// run quickly on single-core machines.
#include "src/runtime/persephone.h"

#include <arpa/inet.h>
#include <cstring>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "src/apps/synthetic.h"
#include "src/net/udp_loadgen.h"

namespace psp {
namespace {

RuntimeConfig UdpRuntime() {
  RuntimeConfig config;
  config.num_workers = 2;
  config.scheduler.mode = PolicyMode::kDarc;
  config.pool_buffers = 1024;
  config.ingress.mode = IngressMode::kUdp;
  config.ingress.listen_port = 0;  // ephemeral
  return config;
}

UdpRequestSpec SpinSpec(uint32_t wire_id, std::string name, double ratio,
                        Nanos spin) {
  UdpRequestSpec spec;
  spec.wire_id = wire_id;
  spec.name = std::move(name);
  spec.ratio = ratio;
  spec.build_payload = [spin](std::byte* payload, uint32_t capacity,
                              Rng&) -> uint32_t {
    if (capacity < sizeof(Nanos)) {
      return 0;
    }
    std::memcpy(payload, &spin, sizeof(spin));
    return sizeof(spin);
  };
  return spec;
}

UdpLoadGenReport Drive(uint16_t port, uint64_t requests, uint32_t flows = 1) {
  UdpLoadGenConfig lg;
  lg.port = port;
  lg.rate_rps = 2000;
  lg.total_requests = requests;
  lg.num_flows = flows;
  lg.drain_timeout = 2 * kSecond;  // generous for loaded CI machines
  UdpLoadGenerator gen({SpinSpec(1, "SHORT", 0.9, FromMicros(5)),
                        SpinSpec(2, "LONG", 0.1, FromMicros(200))},
                       lg);
  std::string error;
  const UdpLoadGenReport report = gen.Run(&error);
  EXPECT_EQ(error, "");
  return report;
}

TEST(RuntimeUdp, EchoesOverLoopbackEndToEnd) {
  Persephone server(UdpRuntime());
  server.RegisterType(1, "SHORT", MakeSpinHandler(), FromMicros(5), 0.9);
  server.RegisterType(2, "LONG", MakeSpinHandler(), FromMicros(200), 0.1);
  server.Start();
  const uint16_t port = server.udp_port();
  ASSERT_GT(port, 0);

  const UdpLoadGenReport report = Drive(port, 300);
  server.Stop();

  EXPECT_EQ(report.sent, 300u);
  // Loopback at this trivial rate: every request comes back, typed.
  EXPECT_EQ(report.received, 300u);
  EXPECT_GT(report.latency.at(1).Count(), 0u);
  EXPECT_GT(report.latency.at(2).Count(), 0u);
  // Client-observed RTT is at least the spun service time.
  EXPECT_GE(report.latency.at(2).Min(), FromMicros(150));

  // The books balance across every layer: socket frontend, dispatcher,
  // scheduler, egress.
  const TelemetrySnapshot snap = server.telemetry_snapshot();
  EXPECT_EQ(snap.counter("ingress.rx_datagrams"), 300u);
  EXPECT_EQ(snap.counter("runtime.rx_packets"), 300u);
  EXPECT_EQ(snap.counter("scheduler.completed"), 300u);
  EXPECT_EQ(snap.counter("ingress.tx_datagrams"), 300u);
  EXPECT_EQ(snap.counter("ingress.malformed"), 0u);
  EXPECT_EQ(snap.counter("ingress.tx_drops"), 0u);
  EXPECT_EQ(snap.counter("runtime.malformed"), 0u);
}

TEST(RuntimeUdp, WireSamplingEchoesServerStampsEndToEnd) {
  // The distributed-tracing wire contract over real loopback datagrams:
  // every 1-in-N client-sampled request comes back with the server's
  // rx/tx stamps echoed in the PSP header, and the server's lifecycle ring
  // holds records carrying the wire identity for the trace join.
  Persephone server(UdpRuntime());
  server.RegisterType(1, "SHORT", MakeSpinHandler(), FromMicros(5), 0.9);
  server.RegisterType(2, "LONG", MakeSpinHandler(), FromMicros(200), 0.1);
  server.Start();

  UdpLoadGenConfig lg;
  lg.port = server.udp_port();
  lg.rate_rps = 2000;
  lg.total_requests = 256;
  lg.sample_every = 8;
  lg.warmup_fraction = 0.0;  // count every sampled id, 1-in-8 exactly
  lg.drain_timeout = 2 * kSecond;
  UdpLoadGenerator gen({SpinSpec(1, "SHORT", 0.9, FromMicros(5)),
                        SpinSpec(2, "LONG", 0.1, FromMicros(200))},
                       lg);
  std::string error;
  const UdpLoadGenReport report = gen.Run(&error);
  ASSERT_EQ(error, "");
  server.Stop();

  ASSERT_EQ(report.received, 256u);
  // 1-in-8 of 256: every sampled response echoed its stamps and recorded.
  EXPECT_EQ(report.samples.size(), 256u / 8u);
  for (const ClientSpanRecord& rec : report.samples) {
    EXPECT_GT(rec.server_rx_ns, 0);
    EXPECT_GE(rec.server_tx_ns, rec.server_rx_ns);
    EXPECT_GE(rec.recv_ns, rec.send_ns);
    // Server sojourn fits inside the client-observed RTT (same TSC domain
    // in-process, so this holds exactly).
    EXPECT_LE(rec.server_tx_ns - rec.server_rx_ns, rec.recv_ns - rec.send_ns);
  }
  EXPECT_GT(report.server_sojourn.at(1).Count() +
                (report.server_sojourn.count(2) != 0
                     ? report.server_sojourn.at(2).Count()
                     : 0),
            0u);

  // The server half: lifecycle records exist whose wire identity matches
  // client-sampled request ids (multiples of sample_every).
  const TelemetrySnapshot snap = server.telemetry_snapshot();
  size_t wire_sampled = 0;
  for (const RequestTrace& trace : snap.traces) {
    if (trace.wire_request_id % lg.sample_every == 0) {
      ++wire_sampled;
      EXPECT_EQ(trace.client_id, 0u);  // single flow
    }
  }
  EXPECT_GT(wire_sampled, 0u);
}

TEST(RuntimeUdp, ReuseportShardsAcrossNetWorkers) {
  RuntimeConfig config = UdpRuntime();
  config.ingress.num_net_workers = 2;
  config.ingress.reuseport = true;
  Persephone server(config);
  server.RegisterType(1, "SHORT", MakeSpinHandler(), FromMicros(5), 0.9);
  server.RegisterType(2, "LONG", MakeSpinHandler(), FromMicros(200), 0.1);
  server.Start();

  // Several client flows (distinct source ports) so the kernel has something
  // to spread across the two shard sockets.
  const UdpLoadGenReport report = Drive(server.udp_port(), 200, /*flows=*/4);
  server.Stop();

  EXPECT_EQ(report.received, 200u);
  const TelemetrySnapshot snap = server.telemetry_snapshot();
  EXPECT_EQ(snap.counter("ingress.rx_datagrams"), 200u);
  EXPECT_EQ(snap.counter("scheduler.completed"), 200u);
}

TEST(RuntimeUdp, AdaptivePollServesAndSleepsWhenIdle) {
  RuntimeConfig config = UdpRuntime();
  config.ingress.poll.policy = PollPolicy::kAdaptive;
  config.ingress.poll.idle_streak_before_sleep = 8;
  config.ingress.poll.min_sleep = 2 * kMicrosecond;
  config.ingress.poll.wakeup_budget = 200 * kMicrosecond;
  Persephone server(config);
  server.RegisterType(1, "SHORT", MakeSpinHandler(), FromMicros(5), 0.9);
  server.RegisterType(2, "LONG", MakeSpinHandler(), FromMicros(200), 0.1);
  server.Start();

  const UdpLoadGenReport report = Drive(server.udp_port(), 200);
  // An idle stretch after the load: the adaptive poller must be sleeping,
  // not spinning.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  server.Stop();

  EXPECT_EQ(report.received, 200u);
  ASSERT_NE(server.udp_ingress(), nullptr);
  const UdpIngressStats stats = server.udp_ingress()->stats();
  EXPECT_GT(stats.sleeps, 0u);
  EXPECT_GT(stats.slept_nanos, 0u);
}

TEST(RuntimeUdp, TruncatedDatagramFeedsDropTelemetry) {
  Persephone server(UdpRuntime());
  server.RegisterType(1, "T", MakeSpinHandler(), FromMicros(2), 1.0);
  server.Start();

  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in dst{};
  dst.sin_family = AF_INET;
  dst.sin_port = htons(server.udp_port());
  ASSERT_EQ(inet_pton(AF_INET, "127.0.0.1", &dst.sin_addr), 1);

  // A 4-byte runt never reaches the dispatcher: the net worker's structural
  // checks drop it into the ingress malformed counter.
  const char runt[4] = {9, 9, 9, 9};
  ASSERT_EQ(::sendto(fd, runt, sizeof(runt), 0,
                     reinterpret_cast<sockaddr*>(&dst), sizeof(dst)),
            4);

  // A datagram whose header lies about its payload length (claims 64 bytes,
  // carries none) passes the net worker (magic is fine) and is rejected by
  // the dispatcher's full parse — the existing runtime.malformed path.
  PspHeader psp;
  psp.magic = PspHeader::kMagic;
  psp.request_type = 1;
  psp.request_id = 0;
  psp.client_id = 0;
  psp.payload_length = 64;
  psp.client_timestamp = 0;
  ASSERT_EQ(::sendto(fd, &psp, sizeof(psp), 0,
                     reinterpret_cast<sockaddr*>(&dst), sizeof(dst)),
            static_cast<ssize_t>(sizeof(psp)));

  const TscClock& clock = TscClock::Global();
  const Nanos deadline = clock.Now() + 2 * kSecond;
  while (clock.Now() < deadline) {
    const TelemetrySnapshot snap = server.telemetry_snapshot();
    if (snap.counter("ingress.malformed") >= 1 &&
        snap.counter("runtime.malformed") >= 1) {
      break;
    }
    std::this_thread::yield();
  }
  server.Stop();
  ::close(fd);

  const TelemetrySnapshot snap = server.telemetry_snapshot();
  EXPECT_EQ(snap.counter("ingress.malformed"), 1u);
  EXPECT_EQ(snap.counter("runtime.malformed"), 1u);
  EXPECT_EQ(snap.counter("scheduler.completed"), 0u);
}

TEST(RuntimeUdp, ValidationRejectsNonsense) {
  // udp mode without a port choice.
  RuntimeConfig no_port;
  no_port.ingress.mode = IngressMode::kUdp;
  EXPECT_THROW(Persephone{no_port}, std::invalid_argument);

  // reuseport with a single net worker.
  RuntimeConfig one_worker = UdpRuntime();
  one_worker.ingress.reuseport = true;
  EXPECT_THROW(Persephone{one_worker}, std::invalid_argument);

  // Several net workers without reuseport (they all bind one port).
  RuntimeConfig no_reuse = UdpRuntime();
  no_reuse.ingress.num_net_workers = 2;
  EXPECT_THROW(Persephone{no_reuse}, std::invalid_argument);

  // The ring-mode net-worker knob in udp mode.
  RuntimeConfig mixed = UdpRuntime();
  mixed.ingress.dedicated_net_worker = true;
  EXPECT_THROW(Persephone{mixed}, std::invalid_argument);
}

TEST(RuntimeUdp, RestartsCleanly) {
  Persephone server(UdpRuntime());
  server.RegisterType(1, "SHORT", MakeSpinHandler(), FromMicros(5), 0.9);
  server.RegisterType(2, "LONG", MakeSpinHandler(), FromMicros(200), 0.1);

  server.Start();
  const UdpLoadGenReport first = Drive(server.udp_port(), 100);
  server.Stop();
  EXPECT_EQ(first.received, 100u);

  // Second lifecycle binds fresh sockets (a fresh ephemeral port is fine)
  // and the pipeline serves again.
  server.Start();
  const UdpLoadGenReport second = Drive(server.udp_port(), 100);
  server.Stop();
  EXPECT_EQ(second.received, 100u);
}

}  // namespace
}  // namespace psp
