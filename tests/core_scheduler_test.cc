// Tests for the DarcScheduler: Algorithm 1 dispatch, policy modes, flow
// control, the c-FCFS bootstrap, and adaptive reservation updates.
#include "src/core/scheduler.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/common/rng.h"

namespace psp {
namespace {

SchedulerConfig BaseConfig(PolicyMode mode, uint32_t workers = 14) {
  SchedulerConfig config;
  config.mode = mode;
  config.num_workers = workers;
  config.profiler.min_window_samples = 100;  // small windows for tests
  return config;
}

Request Req(uint64_t id, TypeIndex type, Nanos arrival, Nanos service = 1000) {
  Request r;
  r.id = id;
  r.type = type;
  r.arrival = arrival;
  r.service_demand = service;
  return r;
}

class HighBimodalScheduler : public ::testing::Test {
 protected:
  HighBimodalScheduler() : scheduler_(BaseConfig(PolicyMode::kDarc)) {
    short_ = scheduler_.RegisterType(1, "SHORT", FromMicros(1.0), 0.5);
    long_ = scheduler_.RegisterType(2, "LONG", FromMicros(100.0), 0.5);
    scheduler_.ActivateSeededReservation();
  }

  DarcScheduler scheduler_;
  TypeIndex short_ = 0;
  TypeIndex long_ = 0;
};

TEST_F(HighBimodalScheduler, SeededReservationMatchesPaper) {
  ASSERT_TRUE(scheduler_.darc_active());
  EXPECT_EQ(scheduler_.reserved_workers_of(short_), 1u);
  EXPECT_EQ(scheduler_.reserved_workers_of(long_), 13u);
}

TEST_F(HighBimodalScheduler, ShortsGoToTheirReservedWorkerFirst) {
  scheduler_.Enqueue(Req(1, short_, 0), 0);
  const auto a = scheduler_.NextAssignment(0);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->worker, 0u);  // worker 0 is the short-reserved core
  EXPECT_FALSE(a->stolen);
}

TEST_F(HighBimodalScheduler, LongsNeverTakeTheShortCore) {
  // Fill the system with long requests: they may occupy at most cores 1..13.
  for (uint64_t i = 0; i < 20; ++i) {
    scheduler_.Enqueue(Req(i, long_, 0), 0);
  }
  std::vector<WorkerId> used;
  while (auto a = scheduler_.NextAssignment(0)) {
    used.push_back(a->worker);
  }
  EXPECT_EQ(used.size(), 13u);  // 13 long cores; worker 0 untouched
  for (const WorkerId w : used) {
    EXPECT_NE(w, 0u);
  }
  // The scheduler deliberately idles worker 0: non-work-conserving for longs.
  EXPECT_EQ(scheduler_.idle_workers(), 1u);
  EXPECT_EQ(scheduler_.queue_depth(long_), 7u);
}

TEST_F(HighBimodalScheduler, ShortsStealLongCoresWhenTheirCoreIsBusy) {
  scheduler_.Enqueue(Req(1, short_, 0), 0);
  scheduler_.Enqueue(Req(2, short_, 0), 0);
  const auto a1 = scheduler_.NextAssignment(0);
  const auto a2 = scheduler_.NextAssignment(0);
  ASSERT_TRUE(a1 && a2);
  EXPECT_EQ(a1->worker, 0u);
  EXPECT_NE(a2->worker, 0u);  // stolen from the long partition
  EXPECT_TRUE(a2->stolen);
  EXPECT_EQ(scheduler_.stolen_dispatches(), 1u);
}

TEST_F(HighBimodalScheduler, ShortsDispatchBeforeEarlierLongs) {
  // Occupy all 13 long-group cores so priority is observable on the rest.
  for (uint64_t i = 0; i < 13; ++i) {
    scheduler_.Enqueue(Req(i, long_, 0), 0);
  }
  while (scheduler_.NextAssignment(0)) {
  }
  // Long waiting since t=100, short arriving later at t=200.
  scheduler_.Enqueue(Req(100, long_, 100), 100);
  scheduler_.Enqueue(Req(200, short_, 200), 200);
  const auto a = scheduler_.NextAssignment(200);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->request.type, short_);  // shorts first despite arriving later
  EXPECT_EQ(a->worker, 0u);
}

TEST_F(HighBimodalScheduler, CompletionFreesWorker) {
  scheduler_.Enqueue(Req(1, short_, 0), 0);
  const auto a = scheduler_.NextAssignment(0);
  ASSERT_TRUE(a.has_value());
  EXPECT_FALSE(scheduler_.NextAssignment(0).has_value());
  scheduler_.OnCompletion(a->worker, short_, 1000, 1000);
  EXPECT_EQ(scheduler_.idle_workers(), 14u);
  scheduler_.Enqueue(Req(2, short_, 1000), 1000);
  EXPECT_TRUE(scheduler_.NextAssignment(1000).has_value());
}

TEST_F(HighBimodalScheduler, UnknownRequestsServedOnSpillwayOnly) {
  scheduler_.Enqueue(Req(1, scheduler_.unknown_type(), 0), 0);
  const auto a = scheduler_.NextAssignment(0);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->worker, 13u);  // last core is the spillway
}

TEST_F(HighBimodalScheduler, UnknownHasLowestPriority) {
  scheduler_.Enqueue(Req(1, scheduler_.unknown_type(), 0), 0);
  scheduler_.Enqueue(Req(2, long_, 10), 10);
  const auto a = scheduler_.NextAssignment(10);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->request.type, long_);
}

TEST_F(HighBimodalScheduler, ResolveTypeMapsWireIds) {
  EXPECT_EQ(scheduler_.ResolveType(1), short_);
  EXPECT_EQ(scheduler_.ResolveType(2), long_);
  EXPECT_EQ(scheduler_.ResolveType(999), scheduler_.unknown_type());
}

TEST_F(HighBimodalScheduler, NoAssignmentWhenAllQueuesEmpty) {
  EXPECT_FALSE(scheduler_.NextAssignment(0).has_value());
}

// --- Flow control ------------------------------------------------------------

TEST(SchedulerFlowControl, DropsOnlyOverloadedType) {
  SchedulerConfig config = BaseConfig(PolicyMode::kDarc, 2);
  config.typed_queue_capacity = 4;
  DarcScheduler scheduler(config);
  const TypeIndex a = scheduler.RegisterType(1, "A", 1000, 0.5);
  const TypeIndex b = scheduler.RegisterType(2, "B", 100000, 0.5);
  scheduler.ActivateSeededReservation();

  // Overflow type A's queue; type B is unaffected.
  uint64_t accepted = 0;
  for (uint64_t i = 0; i < 10; ++i) {
    accepted += scheduler.Enqueue(Req(i, a, 0), 0) ? 1 : 0;
  }
  EXPECT_EQ(accepted, 4u);
  EXPECT_EQ(scheduler.queue_drops(a), 6u);
  EXPECT_TRUE(scheduler.Enqueue(Req(100, b, 0), 0));
  EXPECT_EQ(scheduler.queue_drops(b), 0u);
  EXPECT_EQ(scheduler.dropped(), 6u);
}

// --- c-FCFS mode ---------------------------------------------------------------

TEST(SchedulerCFcfs, DispatchesInGlobalArrivalOrder) {
  DarcScheduler scheduler(BaseConfig(PolicyMode::kCFcfs, 1));
  const TypeIndex a = scheduler.RegisterType(1, "A", 1000, 0.5);
  const TypeIndex b = scheduler.RegisterType(2, "B", 100000, 0.5);

  scheduler.Enqueue(Req(1, b, 10), 10);
  scheduler.Enqueue(Req(2, a, 20), 20);
  scheduler.Enqueue(Req(3, b, 30), 30);

  const auto a1 = scheduler.NextAssignment(30);
  ASSERT_TRUE(a1.has_value());
  EXPECT_EQ(a1->request.id, 1u);  // strictly FIFO, type-blind
  scheduler.OnCompletion(a1->worker, a1->request.type, 100, 100);
  const auto a2 = scheduler.NextAssignment(100);
  EXPECT_EQ(a2->request.id, 2u);
  scheduler.OnCompletion(a2->worker, a2->request.type, 100, 200);
  const auto a3 = scheduler.NextAssignment(200);
  EXPECT_EQ(a3->request.id, 3u);
}

TEST(SchedulerCFcfs, IsWorkConserving) {
  DarcScheduler scheduler(BaseConfig(PolicyMode::kCFcfs, 4));
  const TypeIndex a = scheduler.RegisterType(1, "A", 1000, 1.0);
  for (uint64_t i = 0; i < 4; ++i) {
    scheduler.Enqueue(Req(i, a, 0), 0);
  }
  uint32_t assigned = 0;
  while (scheduler.NextAssignment(0)) {
    ++assigned;
  }
  EXPECT_EQ(assigned, 4u);  // every worker busy whenever work exists
  EXPECT_EQ(scheduler.idle_workers(), 0u);
}

// --- Fixed Priority -------------------------------------------------------------

TEST(SchedulerFixedPriority, ShortTypeAlwaysFirstNoReservation) {
  DarcScheduler scheduler(BaseConfig(PolicyMode::kFixedPriority, 2));
  const TypeIndex a = scheduler.RegisterType(1, "SHORT", 1000, 0.5);
  const TypeIndex b = scheduler.RegisterType(2, "LONG", 100000, 0.5);

  scheduler.Enqueue(Req(1, b, 0), 0);
  scheduler.Enqueue(Req(2, a, 5), 5);
  const auto first = scheduler.NextAssignment(5);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->request.type, a);
  // But longs can run on any core — no reservation protects shorts.
  const auto second = scheduler.NextAssignment(5);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->request.type, b);
  EXPECT_EQ(scheduler.idle_workers(), 0u);
}

// --- DARC-static -----------------------------------------------------------------

TEST(SchedulerDarcStatic, ManualReservationApplies) {
  SchedulerConfig config = BaseConfig(PolicyMode::kDarcStatic, 14);
  config.static_reserved = 3;
  DarcScheduler scheduler(config);
  const TypeIndex s = scheduler.RegisterType(1, "SHORT", 1000, 0.5);
  const TypeIndex l = scheduler.RegisterType(2, "LONG", 100000, 0.5);
  scheduler.ActivateSeededReservation();

  EXPECT_EQ(scheduler.reserved_workers_of(s), 3u);
  EXPECT_EQ(scheduler.reserved_workers_of(l), 11u);

  // Longs saturate only cores 3..13.
  for (uint64_t i = 0; i < 14; ++i) {
    scheduler.Enqueue(Req(i, l, 0), 0);
  }
  uint32_t dispatched = 0;
  while (auto a = scheduler.NextAssignment(0)) {
    EXPECT_GE(a->worker, 3u);
    ++dispatched;
  }
  EXPECT_EQ(dispatched, 11u);
}

// --- Bootstrap and adaptation ------------------------------------------------------

TEST(SchedulerBootstrap, StartsInCFcfsThenTransitionsToDarc) {
  SchedulerConfig config = BaseConfig(PolicyMode::kDarc, 4);
  config.profiler.min_window_samples = 50;
  DarcScheduler scheduler(config);
  const TypeIndex s = scheduler.RegisterType(1, "SHORT");
  const TypeIndex l = scheduler.RegisterType(2, "LONG");

  EXPECT_FALSE(scheduler.darc_active());

  // Feed completions through the bootstrap window: 90% shorts (1 µs), 10%
  // longs (100 µs).
  Nanos now = 0;
  for (uint64_t i = 0; i < 60; ++i) {
    const bool is_long = i % 10 == 0;
    const TypeIndex t = is_long ? l : s;
    const Nanos service = is_long ? FromMicros(100) : FromMicros(1);
    scheduler.Enqueue(Req(i, t, now), now);
    const auto a = scheduler.NextAssignment(now);
    ASSERT_TRUE(a.has_value());
    now += service;
    scheduler.OnCompletion(a->worker, t, service, now);
  }
  EXPECT_TRUE(scheduler.darc_active());
  EXPECT_GE(scheduler.reservation_updates(), 1u);
  // Longs dominate demand (10% × 100 µs vs 90% × 1 µs) → shorts got the
  // minimum 1 core, longs the rest.
  EXPECT_EQ(scheduler.reserved_workers_of(s), 1u);
  EXPECT_EQ(scheduler.reserved_workers_of(l), 3u);
}

TEST(SchedulerAdaptation, ReservationFollowsWorkloadChange) {
  SchedulerConfig config = BaseConfig(PolicyMode::kDarc, 8);
  config.profiler.min_window_samples = 100;
  config.profiler.slo_slowdown = 5.0;
  DarcScheduler scheduler(config);
  const TypeIndex a = scheduler.RegisterType(1, "A", FromMicros(1), 0.5);
  const TypeIndex b = scheduler.RegisterType(2, "B", FromMicros(100), 0.5);
  scheduler.ActivateSeededReservation();
  const uint32_t a_before = scheduler.reserved_workers_of(a);
  EXPECT_EQ(a_before, 1u);

  // Phase flip: A now runs for 100 µs, B for 1 µs. Drive enough completions
  // with queueing delay to trip the update signal.
  Nanos now = 1000000;
  for (uint64_t i = 0; i < 300; ++i) {
    const bool a_turn = i % 2 == 0;
    const TypeIndex t = a_turn ? a : b;
    const Nanos service = a_turn ? FromMicros(100) : FromMicros(1);
    // Arrival long before dispatch => large queueing delay observed.
    scheduler.Enqueue(Req(i, t, now - FromMicros(500)), now);
    const auto assignment = scheduler.NextAssignment(now);
    ASSERT_TRUE(assignment.has_value());
    now += 100;
    scheduler.OnCompletion(assignment->worker, t, service, now);
  }
  // After the window: A (now long) holds most cores; B (now short) got few.
  EXPECT_GT(scheduler.reserved_workers_of(a), 4u);
  EXPECT_LE(scheduler.reserved_workers_of(b), 2u);
  EXPECT_GE(scheduler.reservation_updates(), 2u);
}

// --- Invariants under randomized load -----------------------------------------------

class SchedulerPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SchedulerPropertyTest, ConservationAndSanity) {
  Rng rng(GetParam());
  SchedulerConfig config = BaseConfig(PolicyMode::kDarc, 4);
  config.typed_queue_capacity = 64;
  DarcScheduler scheduler(config);
  const TypeIndex s = scheduler.RegisterType(1, "S", 1000, 0.9);
  const TypeIndex l = scheduler.RegisterType(2, "L", 50000, 0.1);
  scheduler.ActivateSeededReservation();

  struct Running {
    TypeIndex type;
    Nanos service;
  };
  std::vector<std::optional<Running>> running(4);
  uint64_t enqueued = 0;
  uint64_t dropped = 0;
  uint64_t completed = 0;
  size_t outstanding_assignments = 0;

  Nanos now = 0;
  for (int step = 0; step < 2000; ++step) {
    now += static_cast<Nanos>(rng.NextBounded(2000));
    const int action = static_cast<int>(rng.NextBounded(3));
    if (action == 0) {
      const bool is_long = rng.NextBounded(10) == 0;
      Request r = Req(static_cast<uint64_t>(step), is_long ? l : s, now,
                      is_long ? 50000 : 1000);
      if (scheduler.Enqueue(r, now)) {
        ++enqueued;
      } else {
        ++dropped;
      }
    } else if (action == 1) {
      while (auto a = scheduler.NextAssignment(now)) {
        ASSERT_LT(a->worker, 4u);
        ASSERT_FALSE(running[a->worker].has_value()) << "double dispatch";
        running[a->worker] = Running{a->request.type, a->request.service_demand};
        ++outstanding_assignments;
      }
    } else {
      for (WorkerId w = 0; w < 4; ++w) {
        if (running[w] && rng.NextBounded(2) == 0) {
          scheduler.OnCompletion(w, running[w]->type, running[w]->service, now);
          running[w].reset();
          ++completed;
          --outstanding_assignments;
        }
      }
    }
  }
  // Conservation: everything enqueued is either completed, still queued, or
  // still running.
  size_t queued = 0;
  for (TypeIndex t = 0; t < scheduler.num_types(); ++t) {
    queued += scheduler.queue_depth(t);
  }
  EXPECT_EQ(enqueued, completed + queued + outstanding_assignments);
  EXPECT_EQ(scheduler.dropped(), dropped);
  EXPECT_EQ(scheduler.completed(), completed);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerPropertyTest,
                         ::testing::Range<uint64_t>(1, 21));


// --- Dynamic core allocation (§6) -----------------------------------------------

TEST(SchedulerResize, GrowRecomputesReservation) {
  SchedulerConfig config = BaseConfig(PolicyMode::kDarc, 7);
  DarcScheduler scheduler(config);
  const TypeIndex s = scheduler.RegisterType(1, "SHORT", FromMicros(0.5), 0.995);
  const TypeIndex l = scheduler.RegisterType(2, "LONG", FromMicros(500), 0.005);
  scheduler.ActivateSeededReservation();
  EXPECT_EQ(scheduler.reserved_workers_of(s), 1u);  // round(0.166*7)=1

  scheduler.ResizeWorkers(14);
  EXPECT_EQ(scheduler.reserved_workers_of(s), 2u);  // round(0.166*14)=2
  EXPECT_EQ(scheduler.reserved_workers_of(l), 12u);
  EXPECT_EQ(scheduler.idle_workers(), 14u);
}

TEST(SchedulerResize, ShrinkRetiresHighWorkers) {
  SchedulerConfig config = BaseConfig(PolicyMode::kDarc, 8);
  DarcScheduler scheduler(config);
  const TypeIndex s = scheduler.RegisterType(1, "S", FromMicros(1), 0.5);
  const TypeIndex l = scheduler.RegisterType(2, "L", FromMicros(100), 0.5);
  scheduler.ActivateSeededReservation();

  // Occupy every worker with longs, then shrink to 4.
  for (uint64_t i = 0; i < 8; ++i) {
    scheduler.Enqueue(Req(i, l, 0), 0);
    scheduler.Enqueue(Req(100 + i, s, 0), 0);
  }
  std::vector<WorkerId> busy;
  while (auto a = scheduler.NextAssignment(0)) {
    busy.push_back(a->worker);
  }
  ASSERT_EQ(scheduler.idle_workers(), 0u);

  scheduler.ResizeWorkers(4);
  // Retired workers complete but never come back to the free list.
  for (const WorkerId w : busy) {
    scheduler.OnCompletion(w, l, FromMicros(100), 1000);
  }
  EXPECT_EQ(scheduler.idle_workers(), 4u);
  // New assignments land only on surviving workers 0..3.
  scheduler.Enqueue(Req(999, s, 2000), 2000);
  const auto a = scheduler.NextAssignment(2000);
  ASSERT_TRUE(a.has_value());
  EXPECT_LT(a->worker, 4u);
}

TEST(SchedulerResize, WorksBeforeActivation) {
  SchedulerConfig config = BaseConfig(PolicyMode::kDarc, 4);
  DarcScheduler scheduler(config);
  scheduler.RegisterType(1, "T");
  scheduler.ResizeWorkers(8);  // still bootstrapping: just resizes the pool
  EXPECT_FALSE(scheduler.darc_active());
  EXPECT_EQ(scheduler.idle_workers(), 8u);
}

// --- Stealing ablation -----------------------------------------------------------

TEST(SchedulerNoStealing, ShortsConfinedToReservedCores) {
  SchedulerConfig config = BaseConfig(PolicyMode::kDarc, 14);
  config.enable_stealing = false;
  DarcScheduler scheduler(config);
  const TypeIndex s = scheduler.RegisterType(1, "SHORT", FromMicros(1), 0.5);
  scheduler.RegisterType(2, "LONG", FromMicros(100), 0.5);
  scheduler.ActivateSeededReservation();

  // Two shorts: only one reserved core, and stealing is off, so the second
  // stays queued even though 13 long cores sit idle.
  scheduler.Enqueue(Req(1, s, 0), 0);
  scheduler.Enqueue(Req(2, s, 0), 0);
  const auto a1 = scheduler.NextAssignment(0);
  ASSERT_TRUE(a1.has_value());
  EXPECT_EQ(a1->worker, 0u);
  EXPECT_FALSE(scheduler.NextAssignment(0).has_value());
  EXPECT_EQ(scheduler.queue_depth(s), 1u);
  EXPECT_EQ(scheduler.stolen_dispatches(), 0u);
}


// --- Group-FCFS dispatch (§3 single-queue abstraction) ---------------------------

TEST(SchedulerGroupFcfs, OldestHeadWinsWithinAGroup) {
  // Two similar types grouped together (δ=2): with group_fcfs the older
  // request dispatches first regardless of which member type it belongs to.
  SchedulerConfig config = BaseConfig(PolicyMode::kDarc, 4);
  config.group_fcfs = true;
  DarcScheduler scheduler(config);
  const TypeIndex a = scheduler.RegisterType(1, "A", FromMicros(5), 0.5);
  const TypeIndex b = scheduler.RegisterType(2, "B", FromMicros(6), 0.5);
  scheduler.ActivateSeededReservation();
  ASSERT_EQ(scheduler.reservation().groups[0].members.size(), 2u);

  scheduler.Enqueue(Req(1, b, 100), 100);  // B arrived first
  scheduler.Enqueue(Req(2, a, 200), 200);
  const auto first = scheduler.NextAssignment(200);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->request.id, 1u);  // oldest head, even though A sorts first
}

TEST(SchedulerGroupFcfs, LiteralAlgorithmOneUsesTypeOrder) {
  SchedulerConfig config = BaseConfig(PolicyMode::kDarc, 4);
  config.group_fcfs = false;
  DarcScheduler scheduler(config);
  const TypeIndex a = scheduler.RegisterType(1, "A", FromMicros(5), 0.5);
  const TypeIndex b = scheduler.RegisterType(2, "B", FromMicros(6), 0.5);
  scheduler.ActivateSeededReservation();

  scheduler.Enqueue(Req(1, b, 100), 100);
  scheduler.Enqueue(Req(2, a, 200), 200);
  const auto first = scheduler.NextAssignment(200);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->request.type, a);  // strict shortest-mean type order
}

TEST(SchedulerGroupFcfs, EarlierGroupStillBeatsLaterGroup) {
  SchedulerConfig config = BaseConfig(PolicyMode::kDarc, 4);
  config.group_fcfs = true;
  DarcScheduler scheduler(config);
  const TypeIndex s = scheduler.RegisterType(1, "SHORT", FromMicros(1), 0.5);
  const TypeIndex l = scheduler.RegisterType(2, "LONG", FromMicros(100), 0.5);
  scheduler.ActivateSeededReservation();

  scheduler.Enqueue(Req(1, l, 100), 100);   // long arrived earlier
  scheduler.Enqueue(Req(2, s, 200), 200);
  const auto first = scheduler.NextAssignment(200);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->request.type, s);  // group priority unaffected by FCFS
}


// --- Spillway configuration and degenerate setups --------------------------------

TEST(SchedulerSpillway, MultipleSpillwayCoresServeUnknown) {
  SchedulerConfig config = BaseConfig(PolicyMode::kDarc, 8);
  config.num_spillway = 2;
  DarcScheduler scheduler(config);
  scheduler.RegisterType(1, "T", FromMicros(1), 1.0);
  scheduler.ActivateSeededReservation();

  // Two unknown requests may run concurrently on the two spillway cores.
  scheduler.Enqueue(Req(1, scheduler.unknown_type(), 0), 0);
  scheduler.Enqueue(Req(2, scheduler.unknown_type(), 0), 0);
  const auto a1 = scheduler.NextAssignment(0);
  const auto a2 = scheduler.NextAssignment(0);
  ASSERT_TRUE(a1 && a2);
  EXPECT_GE(a1->worker, 6u);
  EXPECT_GE(a2->worker, 6u);
  EXPECT_NE(a1->worker, a2->worker);
  EXPECT_FALSE(scheduler.NextAssignment(0).has_value());  // only 2 spillways
}

TEST(SchedulerDegenerate, OnlyUnknownTrafficStillFlows) {
  // No registered types at all: everything lands on UNKNOWN + spillway.
  DarcScheduler scheduler(BaseConfig(PolicyMode::kDarc, 4));
  Nanos now = 0;
  uint64_t completed = 0;
  for (uint64_t i = 0; i < 50; ++i) {
    scheduler.Enqueue(Req(i, scheduler.unknown_type(), now), now);
    while (auto a = scheduler.NextAssignment(now)) {
      now += 1000;
      scheduler.OnCompletion(a->worker, a->request.type, 1000, now);
      ++completed;
    }
  }
  EXPECT_EQ(completed, 50u);
}

TEST(SchedulerDegenerate, UnknownQueueHasFlowControlToo) {
  SchedulerConfig config = BaseConfig(PolicyMode::kDarc, 2);
  config.typed_queue_capacity = 4;
  DarcScheduler scheduler(config);
  scheduler.RegisterType(1, "T", FromMicros(1), 1.0);
  scheduler.ActivateSeededReservation();
  uint64_t accepted = 0;
  for (uint64_t i = 0; i < 10; ++i) {
    accepted += scheduler.Enqueue(Req(i, scheduler.unknown_type(), 0), 0);
  }
  EXPECT_EQ(accepted, 4u);
  EXPECT_EQ(scheduler.queue_drops(scheduler.unknown_type()), 6u);
}

TEST(SchedulerSpillway, UnknownNeverTouchesNonSpillwayCores) {
  DarcScheduler scheduler(BaseConfig(PolicyMode::kDarc, 14));
  const TypeIndex t = scheduler.RegisterType(1, "T", FromMicros(1), 1.0);
  scheduler.ActivateSeededReservation();
  (void)t;
  // Saturate unknowns; they may only ever occupy the single spillway core.
  for (uint64_t i = 0; i < 5; ++i) {
    scheduler.Enqueue(Req(i, scheduler.unknown_type(), 0), 0);
  }
  uint32_t dispatched = 0;
  while (auto a = scheduler.NextAssignment(0)) {
    EXPECT_EQ(a->worker, 13u);
    ++dispatched;
  }
  EXPECT_EQ(dispatched, 1u);
  EXPECT_EQ(scheduler.idle_workers(), 13u);
}

}  // namespace
}  // namespace psp
