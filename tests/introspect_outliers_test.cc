// Contracts for the tail-outlier capture ring (src/introspect/outliers.h):
// the K-slowest invariant, per-window reset with previous-window retention,
// deterministic JSON, and bit-identical offline artifacts across two
// same-seed simulator runs.
#include "src/introspect/outliers.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <memory>
#include <sstream>

#include "src/introspect/offline.h"
#include "src/introspect/prometheus.h"
#include "src/sim/cluster.h"
#include "src/sim/policies/persephone.h"
#include "src/sim/workload.h"

namespace psp {
namespace {

RequestTrace MakeTrace(uint64_t id, uint32_t type, Nanos rx, Nanos tx) {
  RequestTrace t;
  t.request_id = id;
  t.type = type;
  t.stamp[static_cast<size_t>(TraceStage::kRx)] = rx;
  t.stamp[static_cast<size_t>(TraceStage::kTx)] = tx;
  return t;
}

TEST(Outliers, KeepsKSlowestPerType) {
  OutlierConfig config;
  config.enabled = true;
  config.k = 3;
  config.window = 0;  // one window covering the whole run
  OutlierRecorder rec(config);

  // 10 requests with totals 1000, 2000, ..., 10000. (rx must be nonzero:
  // a zero stamp means "stage never recorded" and the offer is ignored.)
  for (uint64_t i = 1; i <= 10; ++i) {
    rec.Offer(MakeTrace(i, /*type=*/0, /*rx=*/10,
                        /*tx=*/10 + static_cast<Nanos>(i) * 1000),
              static_cast<Nanos>(10 + i * 1000));
  }
  const std::vector<OutlierWindow> windows = rec.Snapshot();
  ASSERT_EQ(windows.size(), 1u);
  const auto& entries = windows[0].per_type.at(0);
  ASSERT_EQ(entries.size(), 3u);
  // Slowest first: 10000, 9000, 8000.
  EXPECT_EQ(entries[0].total, 10000);
  EXPECT_EQ(entries[1].total, 9000);
  EXPECT_EQ(entries[2].total, 8000);
  EXPECT_EQ(rec.offered(), 10u);
}

TEST(Outliers, PerTypeRingsAreIndependent) {
  OutlierConfig config;
  config.enabled = true;
  config.k = 2;
  config.window = 0;
  OutlierRecorder rec(config);
  for (uint64_t i = 1; i <= 5; ++i) {
    rec.Offer(MakeTrace(i, /*type=*/0, 10, 10 + static_cast<Nanos>(i) * 100),
              0);
    rec.Offer(
        MakeTrace(100 + i, /*type=*/1, 10, 10 + static_cast<Nanos>(i) * 1000),
        0);
  }
  const auto windows = rec.Snapshot();
  ASSERT_EQ(windows[0].per_type.size(), 2u);
  EXPECT_EQ(windows[0].per_type.at(0)[0].total, 500);
  EXPECT_EQ(windows[0].per_type.at(1)[0].total, 5000);
}

TEST(Outliers, RecordsWithoutBothEndpointsIgnored) {
  OutlierConfig config;
  config.enabled = true;
  config.k = 4;
  OutlierRecorder rec(config);
  RequestTrace no_tx;
  no_tx.request_id = 1;
  no_tx.stamp[static_cast<size_t>(TraceStage::kRx)] = 100;
  rec.Offer(no_tx, 100);
  EXPECT_EQ(rec.offered(), 0u);
  EXPECT_TRUE(rec.Snapshot()[0].per_type.empty());
}

TEST(Outliers, WindowRotationRetainsPrevious) {
  OutlierConfig config;
  config.enabled = true;
  config.k = 2;
  config.window = 1000;
  OutlierRecorder rec(config);

  // Window [0, 1000): two entries.
  rec.Offer(MakeTrace(1, 0, 10, 410), 400);
  rec.Offer(MakeTrace(2, 0, 200, 500), 500);
  // Crossing into [1000, 2000) rotates.
  rec.Offer(MakeTrace(3, 0, 900, 1500), 1500);
  EXPECT_EQ(rec.windows_rotated(), 1u);

  const auto windows = rec.Snapshot();
  ASSERT_EQ(windows.size(), 2u);
  // Current window (open) first.
  EXPECT_EQ(windows[0].end, 0);
  ASSERT_EQ(windows[0].per_type.at(0).size(), 1u);
  EXPECT_EQ(windows[0].per_type.at(0)[0].trace.request_id, 3u);
  // Previous window second, closed, with both entries slowest-first.
  EXPECT_EQ(windows[1].start, 0);
  EXPECT_EQ(windows[1].end, 1000);
  ASSERT_EQ(windows[1].per_type.at(0).size(), 2u);
  EXPECT_EQ(windows[1].per_type.at(0)[0].total, 400);
  EXPECT_EQ(windows[1].per_type.at(0)[1].total, 300);
}

TEST(Outliers, IdleStretchSkipsWindows) {
  OutlierConfig config;
  config.enabled = true;
  config.k = 1;
  config.window = 1000;
  OutlierRecorder rec(config);
  rec.Offer(MakeTrace(1, 0, 10, 110), 100);
  // Long idle gap: next offer lands in window seq 7, not seq 1.
  rec.Offer(MakeTrace(2, 0, 7200, 7400), 7400);
  const auto windows = rec.Snapshot();
  EXPECT_EQ(windows[0].seq, 7u);
  EXPECT_EQ(windows[0].start, 7000);
}

TEST(Outliers, TiesBrokenByRequestIdDeterministically) {
  OutlierConfig config;
  config.enabled = true;
  config.k = 2;
  OutlierRecorder rec(config);
  // Three entries with identical totals: eviction drops the lowest id, so
  // the two *highest* ids are retained, displayed id-ascending. Offer order
  // must not matter — only the id decides.
  rec.Offer(MakeTrace(30, 0, 100, 600), 0);
  rec.Offer(MakeTrace(10, 0, 100, 600), 0);
  rec.Offer(MakeTrace(20, 0, 100, 600), 0);
  const auto entries = rec.Snapshot()[0].per_type.at(0);
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].trace.request_id, 20u);
  EXPECT_EQ(entries[1].trace.request_id, 30u);
}

TEST(Outliers, JsonShapeAndEscaping) {
  OutlierConfig config;
  config.enabled = true;
  config.k = 2;
  config.window = 0;
  OutlierRecorder rec(config);
  RequestTrace t = MakeTrace(5, 0, 100, 900);
  t.stamp[static_cast<size_t>(TraceStage::kEnqueued)] = 200;
  t.stamp[static_cast<size_t>(TraceStage::kDispatched)] = 300;
  t.stamp[static_cast<size_t>(TraceStage::kHandlerStart)] = 350;
  t.stamp[static_cast<size_t>(TraceStage::kHandlerEnd)] = 800;
  t.worker = 2;
  rec.Offer(t, 900);

  std::map<uint32_t, std::string> names;
  names[0] = "A\"B";
  const std::string json = rec.ToJson(names);
  EXPECT_NE(json.find("\"k\":2"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"A\\\"B\""), std::string::npos);
  EXPECT_NE(json.find("\"request_id\":5"), std::string::npos);
  EXPECT_NE(json.find("\"total_nanos\":800"), std::string::npos);
  EXPECT_NE(json.find("\"queueing\":100"), std::string::npos);
  EXPECT_NE(json.find("\"service\":450"), std::string::npos);
  // Deterministic output.
  EXPECT_EQ(json, rec.ToJson(names));
}

// Two same-seed simulator runs with outlier capture + offline rendering must
// produce byte-identical artifacts (the sim determinism contract extended to
// the introspection plane).
TEST(Outliers, SimOfflineArtifactsDeterministicAcrossRuns) {
  auto run_once = [](const std::string& dir) {
    WorkloadSpec workload = HighBimodal();
    ClusterConfig config;
    config.num_workers = 4;
    config.rate_rps = 2e5;
    config.duration = 20 * kMillisecond;
    config.seed = 7;
    config.telemetry.sample_every = 4;
    config.telemetry.timeseries.enabled = true;
    config.telemetry.timeseries.interval = 5 * kMillisecond;
    config.outliers.enabled = true;
    config.outliers.k = 5;
    config.outliers.window = 10 * kMillisecond;
    config.introspect_dir = dir;
    ClusterEngine engine(workload, config,
                         std::make_unique<PersephonePolicy>());
    engine.Run();
    EXPECT_GT(engine.outliers()->offered(), 0u);
  };

  const std::string dir_a = ::testing::TempDir() + "/introspect_a";
  const std::string dir_b = ::testing::TempDir() + "/introspect_b";
  run_once(dir_a);
  run_once(dir_b);

  for (const char* file :
       {"metrics.prom", "snapshot.json", "timeseries.json", "outliers.json"}) {
    std::ifstream a(dir_a + "/" + file), b(dir_b + "/" + file);
    ASSERT_TRUE(a.good()) << file;
    ASSERT_TRUE(b.good()) << file;
    std::stringstream sa, sb;
    sa << a.rdbuf();
    sb << b.rdbuf();
    EXPECT_FALSE(sa.str().empty()) << file;
    EXPECT_EQ(sa.str(), sb.str()) << file;
  }
}

}  // namespace
}  // namespace psp
