// Tests for Algorithm 2 (worker reservation), including every worked example
// the paper reports: High/Extreme Bimodal, RocksDB and the full TPC-C
// grouping + allocation of §5.4.3.
#include "src/core/reservation.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.h"

namespace psp {
namespace {

TypeDemand D(TypeIndex t, double mean_us, double ratio) {
  return TypeDemand{t, mean_us * 1e3, ratio};
}

std::vector<WorkerId> Workers(const WorkerSet& s) {
  std::vector<WorkerId> out;
  for (WorkerId w = 0; w < kMaxWorkers; ++w) {
    if (s.Test(w)) {
      out.push_back(w);
    }
  }
  return out;
}

// --- δ-grouping ------------------------------------------------------------

TEST(GroupTypes, GroupsTypesWithinDelta) {
  const std::vector<TypeDemand> demands = {D(0, 5.7, 0.44), D(1, 6.0, 0.04),
                                           D(2, 20.0, 0.44), D(3, 88.0, 0.04),
                                           D(4, 100.0, 0.04)};
  const auto groups = GroupTypes(demands, 2.0);
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups[0], (std::vector<size_t>{0, 1}));  // Payment, OrderStatus
  EXPECT_EQ(groups[1], (std::vector<size_t>{2}));     // NewOrder
  EXPECT_EQ(groups[2], (std::vector<size_t>{3, 4}));  // Delivery, StockLevel
}

TEST(GroupTypes, SortsUnorderedInput) {
  const std::vector<TypeDemand> demands = {D(0, 100.0, 0.2), D(1, 1.0, 0.8)};
  const auto groups = GroupTypes(demands, 2.0);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].front(), 1u);  // the 1 µs type sorts first
  EXPECT_EQ(groups[1].front(), 0u);
}

TEST(GroupTypes, SingleGroupWhenAllSimilar) {
  const std::vector<TypeDemand> demands = {D(0, 1.0, 0.3), D(1, 1.5, 0.3),
                                           D(2, 1.9, 0.4)};
  EXPECT_EQ(GroupTypes(demands, 2.0).size(), 1u);
}

TEST(GroupTypes, DeltaOneSeparatesDistinctTimes) {
  const std::vector<TypeDemand> demands = {D(0, 1.0, 0.5), D(1, 1.1, 0.5)};
  EXPECT_EQ(GroupTypes(demands, 1.0).size(), 2u);
  EXPECT_EQ(GroupTypes(demands, 1.2).size(), 1u);
}

TEST(GroupTypes, GroupingIsAnchoredAtGroupHead) {
  // 1, 1.9, 3.6: 1.9 joins 1's group (≤2×1); 3.6 does NOT (>2×1) even though
  // 3.6 ≤ 2×1.9 — the anchor is the group head.
  const std::vector<TypeDemand> demands = {D(0, 1.0, 0.3), D(1, 1.9, 0.3),
                                           D(2, 3.6, 0.4)};
  const auto groups = GroupTypes(demands, 2.0);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].size(), 2u);
  EXPECT_EQ(groups[1].size(), 1u);
}

TEST(GroupTypes, EmptyInput) {
  EXPECT_TRUE(GroupTypes({}, 2.0).empty());
}

// --- Paper worked example: High Bimodal -------------------------------------

TEST(ComputeReservation, HighBimodalReservesOneCoreForShorts) {
  // 50% × 1 µs, 50% × 100 µs, 14 workers. Short demand fraction
  // 0.5/50.5 ≈ 0.0099 → 0.139 workers → round 0 → floor 1 (§5.2: "DARC
  // reserves 1 core for short requests").
  const std::vector<TypeDemand> demands = {D(0, 1.0, 0.5), D(1, 100.0, 0.5)};
  const auto r = ComputeReservation(demands, ReservationConfig{14, 2.0, 1});

  ASSERT_EQ(r.groups.size(), 2u);
  const auto& shorts = r.groups[0];
  const auto& longs = r.groups[1];
  EXPECT_EQ(shorts.reserved_count, 1u);
  EXPECT_EQ(Workers(shorts.reserved), (std::vector<WorkerId>{0}));
  // Shorts may steal every long worker: cores 1..13.
  EXPECT_EQ(shorts.stealable.Count(), 13u);
  EXPECT_FALSE(shorts.stealable.Test(0));
  // Longs get the remaining 13 cores and cannot steal.
  EXPECT_EQ(longs.reserved_count, 13u);
  EXPECT_TRUE(longs.stealable.Empty());
  // Paper: "The average CPU waste occasioned by DARC is 0.86 core."
  EXPECT_NEAR(r.cpu_waste, 0.86, 0.01);
}

// --- Paper worked example: Extreme Bimodal -----------------------------------

TEST(ComputeReservation, ExtremeBimodalReservesTwoCores) {
  // 99.5% × 0.5 µs, 0.5% × 500 µs, 14 workers. Short fraction
  // 0.4975/2.9975 ≈ 0.166 → 2.32 workers → round 2 (§5.4.2: "Perséphone
  // reserves 2 cores").
  const std::vector<TypeDemand> demands = {D(0, 0.5, 0.995), D(1, 500.0, 0.005)};
  const auto r = ComputeReservation(demands, ReservationConfig{14, 2.0, 1});

  ASSERT_EQ(r.groups.size(), 2u);
  EXPECT_EQ(r.groups[0].reserved_count, 2u);
  EXPECT_EQ(r.groups[1].reserved_count, 12u);
  EXPECT_EQ(r.groups[0].stealable.Count(), 12u);
}

// --- Paper worked example: RocksDB -------------------------------------------

TEST(ComputeReservation, RocksDbReservesOneCoreWithHighWaste) {
  // 50% GET 1.5 µs, 50% SCAN 635 µs (§5.4.4: "DARC reserves 1 core for GET
  // requests, idling 0.96 core on average").
  const std::vector<TypeDemand> demands = {D(0, 1.5, 0.5), D(1, 635.0, 0.5)};
  const auto r = ComputeReservation(demands, ReservationConfig{14, 2.0, 1});

  ASSERT_EQ(r.groups.size(), 2u);
  EXPECT_EQ(r.groups[0].reserved_count, 1u);
  EXPECT_NEAR(r.cpu_waste, 0.97, 0.02);
}

// --- Paper worked example: TPC-C (§5.4.3, exact allocation) -------------------

TEST(ComputeReservation, TpccMatchesPaperAllocation) {
  const std::vector<TypeDemand> demands = {
      D(0, 5.7, 0.44),   // Payment
      D(1, 6.0, 0.04),   // OrderStatus
      D(2, 20.0, 0.44),  // NewOrder
      D(3, 88.0, 0.04),  // Delivery
      D(4, 100.0, 0.04)  // StockLevel
  };
  const auto r = ComputeReservation(demands, ReservationConfig{14, 2.0, 1});

  // "DARC groups Payment and OrderStatus transactions (group A), lets
  // NewOrder run in their own group (B), and groups Delivery and StockLevel
  // (group C)."
  ASSERT_EQ(r.groups.size(), 3u);
  EXPECT_EQ(r.groups[0].members, (std::vector<TypeIndex>{0, 1}));
  EXPECT_EQ(r.groups[1].members, (std::vector<TypeIndex>{2}));
  EXPECT_EQ(r.groups[2].members, (std::vector<TypeIndex>{3, 4}));

  // "DARC attributes workers 1 and 2 to group A, 3–8 to group B, and 9–14 to
  // group C" (paper counts from 1; we count from 0).
  EXPECT_EQ(Workers(r.groups[0].reserved), (std::vector<WorkerId>{0, 1}));
  EXPECT_EQ(Workers(r.groups[1].reserved),
            (std::vector<WorkerId>{2, 3, 4, 5, 6, 7}));
  EXPECT_EQ(Workers(r.groups[2].reserved),
            (std::vector<WorkerId>{8, 9, 10, 11, 12, 13}));

  // "Group A can steal from workers 3–14, group B from workers 9–14, and
  // group C cannot steal."
  EXPECT_EQ(Workers(r.groups[0].stealable),
            (std::vector<WorkerId>{2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13}));
  EXPECT_EQ(Workers(r.groups[1].stealable),
            (std::vector<WorkerId>{8, 9, 10, 11, 12, 13}));
  EXPECT_TRUE(r.groups[2].stealable.Empty());

  // "There is no average CPU waste with this allocation."
  EXPECT_NEAR(r.cpu_waste, 0.0, 0.05);

  // Type → group mapping.
  EXPECT_EQ(r.group_of_type[0], 0u);
  EXPECT_EQ(r.group_of_type[1], 0u);
  EXPECT_EQ(r.group_of_type[2], 1u);
  EXPECT_EQ(r.group_of_type[3], 2u);
  EXPECT_EQ(r.group_of_type[4], 2u);
}

// --- Spillway ----------------------------------------------------------------

TEST(ComputeReservation, SpillwayServesGroupsWhenWorkersExhausted) {
  // One dominant type grabs all workers; the tiny long type must be served
  // from the spillway core rather than denied service.
  const std::vector<TypeDemand> demands = {D(0, 10.0, 0.999),
                                           D(1, 10000.0, 0.0)};
  const auto r = ComputeReservation(demands, ReservationConfig{4, 2.0, 1});
  ASSERT_EQ(r.groups.size(), 2u);
  EXPECT_EQ(r.groups[0].reserved_count, 4u);
  EXPECT_TRUE(r.groups[1].uses_spillway);
  EXPECT_EQ(Workers(r.groups[1].reserved), (std::vector<WorkerId>{3}));
}

TEST(ComputeReservation, ZeroRatioTypesLandOnSpillway) {
  const std::vector<TypeDemand> demands = {D(0, 1.0, 1.0), D(1, 100.0, 0.0)};
  const auto r = ComputeReservation(demands, ReservationConfig{14, 2.0, 1});
  ASSERT_EQ(r.groups.size(), 2u);
  EXPECT_TRUE(r.groups[1].uses_spillway);
  EXPECT_TRUE(r.groups[1].reserved.Test(13));
}

TEST(ComputeReservation, RoundingOverflowFallsBackToSpillway) {
  // Three equal groups of 1/3 demand each on 2 workers: round(0.67) = 1 each;
  // the third group exhausts the free list and lands on the spillway.
  const std::vector<TypeDemand> demands = {D(0, 1.0, 1.0 / 3), D(1, 10.0, 1.0 / 3),
                                           D(2, 100.0, 1.0 / 3)};
  const auto r = ComputeReservation(demands, ReservationConfig{2, 1.5, 1});
  ASSERT_EQ(r.groups.size(), 3u);
  EXPECT_FALSE(r.groups[0].uses_spillway);
  EXPECT_FALSE(r.groups[1].uses_spillway);
  EXPECT_TRUE(r.groups[2].uses_spillway);
}

// --- Invariants over randomized inputs ----------------------------------------

class ReservationPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ReservationPropertyTest, InvariantsHold) {
  Rng rng(GetParam());
  const auto num_types = static_cast<size_t>(2 + rng.NextBounded(8));
  const auto num_workers = static_cast<uint32_t>(2 + rng.NextBounded(62));
  std::vector<TypeDemand> demands;
  for (size_t i = 0; i < num_types; ++i) {
    demands.push_back(D(static_cast<TypeIndex>(i),
                        0.5 + rng.NextDouble() * 1000.0, rng.NextDouble()));
  }
  const ReservationConfig config{num_workers, 1.0 + rng.NextDouble() * 4,
                                 1};
  const auto r = ComputeReservation(demands, config);

  // 1. Every type belongs to exactly one group.
  std::vector<int> seen(num_types, 0);
  for (const auto& g : r.groups) {
    for (const TypeIndex t : g.members) {
      ASSERT_LT(t, num_types);
      ++seen[t];
    }
  }
  for (size_t i = 0; i < num_types; ++i) {
    EXPECT_EQ(seen[i], 1) << "type " << i;
  }

  // 2. Every group has at least one worker (spillway included).
  for (const auto& g : r.groups) {
    EXPECT_GE(g.reserved_count, 1u);
  }

  // 3. Non-spillway reserved sets are disjoint.
  WorkerSet acc;
  for (const auto& g : r.groups) {
    if (g.uses_spillway) {
      continue;
    }
    EXPECT_EQ(acc.Intersect(g.reserved).Count(), 0u);
    acc = acc.Union(g.reserved);
  }

  // 4. Groups are sorted by ascending mean service time, and a group's
  //    stealable set never includes its own or any earlier group's workers.
  WorkerSet earlier;
  double prev_mean = -1;
  for (const auto& g : r.groups) {
    if (g.uses_spillway) {
      continue;
    }
    EXPECT_GE(g.mean_service_nanos, prev_mean);
    prev_mean = g.mean_service_nanos;
    EXPECT_EQ(g.stealable.Intersect(g.reserved).Count(), 0u);
    EXPECT_EQ(g.stealable.Intersect(earlier).Count(), 0u);
    earlier = earlier.Union(g.reserved);
  }

  // 5. Waste is bounded: at most 1 core per group (granted beyond demand can
  //    only come from rounding/min-floor of a single group's allocation).
  EXPECT_LE(r.cpu_waste, static_cast<double>(r.groups.size()));
  EXPECT_GE(r.cpu_waste, 0.0);

  // 6. All worker ids are within range.
  for (const auto& g : r.groups) {
    for (const WorkerId w : Workers(g.reserved)) {
      EXPECT_LT(w, num_workers);
    }
    for (const WorkerId w : Workers(g.stealable)) {
      EXPECT_LT(w, num_workers);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReservationPropertyTest,
                         ::testing::Range<uint64_t>(1, 41));

// --- DARC-static (§5.3) -------------------------------------------------------

TEST(StaticReservation, ReservesForShortestAndLetsItStealAll) {
  const std::vector<TypeDemand> demands = {D(0, 1.0, 0.5), D(1, 100.0, 0.5)};
  const auto r = ComputeStaticReservation(demands, 14, 3);
  ASSERT_EQ(r.groups.size(), 2u);
  EXPECT_EQ(Workers(r.groups[0].reserved), (std::vector<WorkerId>{0, 1, 2}));
  EXPECT_EQ(r.groups[0].stealable.Count(), 11u);
  EXPECT_EQ(r.groups[1].reserved_count, 11u);
  EXPECT_TRUE(r.groups[1].stealable.Empty());
}

TEST(StaticReservation, ZeroReservedIsFixedPriority) {
  const std::vector<TypeDemand> demands = {D(0, 1.0, 0.5), D(1, 100.0, 0.5)};
  const auto r = ComputeStaticReservation(demands, 14, 0);
  EXPECT_EQ(r.groups[0].reserved_count, 0u);
  EXPECT_EQ(r.groups[0].stealable.Count(), 14u);
  EXPECT_EQ(r.groups[1].reserved_count, 14u);
}

TEST(StaticReservation, FullReservationStarvesLongsToSpillway) {
  const std::vector<TypeDemand> demands = {D(0, 1.0, 0.5), D(1, 100.0, 0.5)};
  const auto r = ComputeStaticReservation(demands, 14, 14);
  EXPECT_EQ(r.groups[0].reserved_count, 14u);
  EXPECT_TRUE(r.groups[1].uses_spillway);
  EXPECT_EQ(r.groups[1].reserved_count, 1u);
}

TEST(StaticReservation, PicksShortestByMeanNotOrder) {
  const std::vector<TypeDemand> demands = {D(0, 100.0, 0.5), D(1, 1.0, 0.5)};
  const auto r = ComputeStaticReservation(demands, 8, 2);
  EXPECT_EQ(r.groups[0].members, (std::vector<TypeIndex>{1}));
  EXPECT_EQ(r.group_of_type[1], 0u);
  EXPECT_EQ(r.group_of_type[0], 1u);
}

// --- Edge cases ----------------------------------------------------------------

TEST(ComputeReservation, EmptyDemands) {
  const auto r = ComputeReservation({}, ReservationConfig{14, 2.0, 1});
  EXPECT_TRUE(r.groups.empty());
  EXPECT_EQ(r.cpu_waste, 0.0);
}

TEST(ComputeReservation, SingleTypeTakesAllWorkers) {
  const auto r = ComputeReservation({D(0, 5.0, 1.0)},
                                    ReservationConfig{14, 2.0, 1});
  ASSERT_EQ(r.groups.size(), 1u);
  EXPECT_EQ(r.groups[0].reserved_count, 14u);
  EXPECT_TRUE(r.groups[0].stealable.Empty());
}

TEST(ComputeReservation, SingleWorkerSystem) {
  const std::vector<TypeDemand> demands = {D(0, 1.0, 0.5), D(1, 100.0, 0.5)};
  const auto r = ComputeReservation(demands, ReservationConfig{1, 2.0, 1});
  ASSERT_EQ(r.groups.size(), 2u);
  // Both groups end up on the only core; the second via the spillway path.
  EXPECT_TRUE(r.groups[0].reserved.Test(0));
  EXPECT_TRUE(r.groups[1].reserved.Test(0));
  EXPECT_TRUE(r.groups[1].uses_spillway);
}

TEST(ComputeReservation, RatiosAreNormalised) {
  // Ratios 50/50 (unnormalised) must behave like 0.5/0.5.
  const std::vector<TypeDemand> a = {D(0, 1.0, 50.0), D(1, 100.0, 50.0)};
  const std::vector<TypeDemand> b = {D(0, 1.0, 0.5), D(1, 100.0, 0.5)};
  const auto ra = ComputeReservation(a, ReservationConfig{14, 2.0, 1});
  const auto rb = ComputeReservation(b, ReservationConfig{14, 2.0, 1});
  ASSERT_EQ(ra.groups.size(), rb.groups.size());
  for (size_t i = 0; i < ra.groups.size(); ++i) {
    EXPECT_EQ(ra.groups[i].reserved_count, rb.groups[i].reserved_count);
  }
}

TEST(ComputeReservation, MoreTypesThanWorkers) {
  // "Grouping lets DARC handle workloads where the number of distinct types
  // is higher than the number of workers."
  std::vector<TypeDemand> demands;
  for (TypeIndex i = 0; i < 32; ++i) {
    demands.push_back(D(i, std::pow(1.15, i), 1.0 / 32));
  }
  const auto r = ComputeReservation(demands, ReservationConfig{4, 2.0, 1});
  // Every type must be mapped and every group must have a worker.
  for (TypeIndex i = 0; i < 32; ++i) {
    EXPECT_LT(r.group_of_type[i], r.groups.size());
  }
  for (const auto& g : r.groups) {
    EXPECT_GE(g.reserved_count, 1u);
  }
}

TEST(ComputeReservation, Figure1SixteenWorkerVariant) {
  // §2 simulation: Extreme Bimodal on 16 workers. Short demand 0.166×16 =
  // 2.66 → round 3; longs get the other 13.
  const std::vector<TypeDemand> demands = {D(0, 0.5, 0.995), D(1, 500.0, 0.005)};
  const auto r = ComputeReservation(demands, ReservationConfig{16, 2.0, 1});
  EXPECT_EQ(r.groups[0].reserved_count, 3u);
  EXPECT_EQ(r.groups[1].reserved_count, 13u);
}

}  // namespace
}  // namespace psp
