// RNG quality tests beyond the distribution suite: reference vectors for
// SplitMix64, state independence, and bit balance.
#include "src/common/rng.h"

#include <gtest/gtest.h>

#include <set>

namespace psp {
namespace {

TEST(SplitMix64, KnownReferenceSequence) {
  // Reference values for seed 1234567 from the canonical splitmix64.c.
  SplitMix64 sm(1234567);
  EXPECT_EQ(sm.Next(), 6457827717110365317ULL);
  EXPECT_EQ(sm.Next(), 3203168211198807973ULL);
  EXPECT_EQ(sm.Next(), 9817491932198370423ULL);
}

TEST(Rng, SeedZeroStillProducesEntropy) {
  // xoshiro must never run with an all-zero state; SplitMix expansion
  // guarantees that even for seed 0.
  Rng rng(0);
  std::set<uint64_t> values;
  for (int i = 0; i < 100; ++i) {
    values.insert(rng.Next());
  }
  EXPECT_GT(values.size(), 95u);
}

TEST(Rng, ReseedingResetsSequence) {
  Rng rng(42);
  const uint64_t first = rng.Next();
  rng.Next();
  rng.Next();
  rng.Seed(42);
  EXPECT_EQ(rng.Next(), first);
}

TEST(Rng, BitsAreRoughlyBalanced) {
  Rng rng(7);
  int ones[64] = {};
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    uint64_t v = rng.Next();
    for (int b = 0; b < 64; ++b) {
      ones[b] += (v >> b) & 1;
    }
  }
  for (int b = 0; b < 64; ++b) {
    EXPECT_NEAR(ones[b], kDraws / 2, kDraws / 20) << "bit " << b;
  }
}

TEST(Rng, BoundedNeverExceedsBound) {
  Rng rng(9);
  for (uint64_t bound : {1ULL, 2ULL, 7ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(Rng::min() == 0);
  static_assert(Rng::max() == ~0ULL);
  Rng rng(1);
  EXPECT_NE(rng(), rng());
}

}  // namespace
}  // namespace psp
