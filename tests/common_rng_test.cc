// RNG quality tests beyond the distribution suite: reference vectors for
// SplitMix64, state independence, and bit balance.
#include "src/common/rng.h"

#include <gtest/gtest.h>

#include <set>

namespace psp {
namespace {

TEST(SplitMix64, KnownReferenceSequence) {
  // Reference values for seed 1234567 from the canonical splitmix64.c.
  SplitMix64 sm(1234567);
  EXPECT_EQ(sm.Next(), 6457827717110365317ULL);
  EXPECT_EQ(sm.Next(), 3203168211198807973ULL);
  EXPECT_EQ(sm.Next(), 9817491932198370423ULL);
}

TEST(Rng, SeedZeroStillProducesEntropy) {
  // xoshiro must never run with an all-zero state; SplitMix expansion
  // guarantees that even for seed 0.
  Rng rng(0);
  std::set<uint64_t> values;
  for (int i = 0; i < 100; ++i) {
    values.insert(rng.Next());
  }
  EXPECT_GT(values.size(), 95u);
}

TEST(Rng, ReseedingResetsSequence) {
  Rng rng(42);
  const uint64_t first = rng.Next();
  rng.Next();
  rng.Next();
  rng.Seed(42);
  EXPECT_EQ(rng.Next(), first);
}

TEST(Rng, BitsAreRoughlyBalanced) {
  Rng rng(7);
  int ones[64] = {};
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    uint64_t v = rng.Next();
    for (int b = 0; b < 64; ++b) {
      ones[b] += (v >> b) & 1;
    }
  }
  for (int b = 0; b < 64; ++b) {
    EXPECT_NEAR(ones[b], kDraws / 2, kDraws / 20) << "bit " << b;
  }
}

TEST(Rng, BoundedNeverExceedsBound) {
  Rng rng(9);
  for (uint64_t bound : {1ULL, 2ULL, 7ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(Rng, StreamSeedIsPureFunctionOfRootAndStream) {
  // Stream k's seed must not depend on how many sibling streams exist or in
  // which order they are derived — the fleet determinism contract: server k's
  // seed is the same whether the fleet has 2 or 8 servers.
  const uint64_t direct = Rng::StreamSeed(42, 3);
  for (int repeat = 0; repeat < 3; ++repeat) {
    EXPECT_EQ(Rng::StreamSeed(42, 3), direct);
  }
  EXPECT_NE(Rng::StreamSeed(42, 3), Rng::StreamSeed(42, 4));
  EXPECT_NE(Rng::StreamSeed(42, 3), Rng::StreamSeed(43, 3));
}

TEST(Rng, SplitIsIndependentOfParentDrawPosition) {
  // Split derives from the parent's seed, never its evolving state: splitting
  // after consuming values yields the same child stream.
  Rng fresh(99);
  Rng consumed(99);
  for (int i = 0; i < 1000; ++i) {
    consumed.Next();
  }
  Rng a = fresh.Split(5);
  Rng b = consumed.Split(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Rng, SplitStreamsAreDecorrelated) {
  // Sibling streams (and the parent) must not share a draw sequence, even
  // for adjacent stream ids and nearby seeds.
  Rng parent(1);
  Rng s0 = parent.Split(0);
  Rng s1 = parent.Split(1);
  std::set<uint64_t> seen;
  constexpr int kDraws = 1000;
  for (int i = 0; i < kDraws; ++i) {
    seen.insert(parent.Next());
    seen.insert(s0.Next());
    seen.insert(s1.Next());
  }
  EXPECT_EQ(seen.size(), 3u * kDraws);
}

TEST(Rng, SplitOfSplitStaysDeterministic) {
  // Nested splits (fleet -> server -> per-role streams) are reproducible.
  const uint64_t a = Rng(7).Split(2).Split(9).Next();
  const uint64_t b = Rng(7).Split(2).Split(9).Next();
  EXPECT_EQ(a, b);
}

TEST(Rng, SeedAccessorTracksReseeding) {
  Rng rng(11);
  EXPECT_EQ(rng.seed(), 11u);
  rng.Seed(22);
  EXPECT_EQ(rng.seed(), 22u);
  EXPECT_EQ(rng.Split(0).seed(), Rng::StreamSeed(22, 0));
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(Rng::min() == 0);
  static_assert(Rng::max() == ~0ULL);
  Rng rng(1);
  EXPECT_NE(rng(), rng());
}

}  // namespace
}  // namespace psp
