// Unit tests for the telemetry subsystem: trace ring ordering/wraparound,
// sampling, registry instruments, snapshot merge, the stage breakdown, the
// exporters, and config validation (telemetry + scheduler + runtime).
#include "src/telemetry/telemetry.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <thread>

#include "src/core/scheduler.h"
#include "src/runtime/persephone.h"

namespace psp {
namespace {

RequestTrace MakeTrace(uint64_t id, uint32_t type, Nanos base) {
  // Consecutive stages 10 ns apart so every span is exact and non-zero.
  RequestTrace t;
  t.request_id = id;
  t.type = type;
  t.worker = 1;
  for (size_t s = 0; s < kNumTraceStages; ++s) {
    t.stamp[s] = base + static_cast<Nanos>(10 * s);
  }
  return t;
}

TEST(TraceRing, PreservesPushOrder) {
  TraceRing ring(16);
  for (uint64_t i = 0; i < 5; ++i) {
    ring.Push(MakeTrace(i, 0, 1000));
  }
  std::vector<RequestTrace> out;
  EXPECT_EQ(ring.Snapshot(&out), 5u);
  ASSERT_EQ(out.size(), 5u);
  for (uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(out[i].request_id, i);
  }
  EXPECT_EQ(ring.pushed(), 5u);
}

TEST(TraceRing, WrapsAroundKeepingNewest) {
  TraceRing ring(8);  // power of two, kept as-is
  EXPECT_EQ(ring.capacity(), 8u);
  for (uint64_t i = 0; i < 20; ++i) {
    ring.Push(MakeTrace(i, 0, 1000));
  }
  std::vector<RequestTrace> out;
  ring.Snapshot(&out);
  ASSERT_EQ(out.size(), 8u);
  // The 8 newest records, oldest first.
  for (size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(out[i].request_id, 12 + i);
  }
  EXPECT_EQ(ring.pushed(), 20u);
}

TEST(TraceRing, RoundsCapacityUpToPowerOfTwo) {
  TraceRing ring(5);
  EXPECT_EQ(ring.capacity(), 8u);
  TraceRing tiny(0);
  EXPECT_GE(tiny.capacity(), 8u);
}

TEST(TraceRing, SnapshotIsSafeWhileWriting) {
  TraceRing ring(64);
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    uint64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      ring.Push(MakeTrace(i++, 0, 1000));
    }
  });
  // Concurrent snapshots must only ever observe fully committed records.
  for (int pass = 0; pass < 200; ++pass) {
    std::vector<RequestTrace> out;
    ring.Snapshot(&out);
    for (const RequestTrace& t : out) {
      EXPECT_EQ(t.Span(TraceStage::kRx, TraceStage::kTx), 60);
    }
  }
  stop.store(true);
  writer.join();
}

TEST(TraceSampler, OneInNCadence) {
  TraceSampler sampler(4);
  int hits = 0;
  for (int i = 0; i < 100; ++i) {
    if (sampler.Tick()) {
      ++hits;
    }
  }
  EXPECT_EQ(hits, 25);
}

TEST(TraceSampler, ZeroDisablesAndOneTracesAll) {
  TraceSampler off(0);
  TraceSampler all(1);
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(off.Tick());
    EXPECT_TRUE(all.Tick());
  }
}

TEST(MetricsRegistry, InstrumentsAreStableAndExported) {
  MetricsRegistry registry;
  Counter& c = registry.GetCounter("x.count");
  c.Add(3);
  registry.GetCounter("x.count").Add(2);  // same instrument
  EXPECT_EQ(c.Value(), 5u);

  registry.GetGauge("x.depth").Set(-7);
  registry.GetHistogram("x.lat").Record(1000);
  registry.GetHistogram("x.lat").Record(3000);

  TelemetrySnapshot snap;
  registry.Export(&snap);
  EXPECT_EQ(snap.counter("x.count"), 5u);
  EXPECT_EQ(snap.gauge("x.depth"), -7);
  EXPECT_EQ(snap.counter("missing", 42), 42u);
  ASSERT_TRUE(snap.histograms.contains("x.lat"));
  EXPECT_EQ(snap.histograms.at("x.lat").Count(), 2u);
}

TEST(MetricsRegistry, ConcurrentWritersDoNotLoseCounts) {
  MetricsRegistry registry;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      Counter& c = registry.GetCounter("shared");
      for (int i = 0; i < kPerThread; ++i) {
        c.Add();
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(registry.GetCounter("shared").Value(),
            static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(TelemetrySnapshot, MergeFoldsEveryField) {
  TelemetrySnapshot a;
  a.counters["n"] = 5;
  a.gauges["g"] = 1;
  a.histograms["h"].Add(100);
  a.traces.push_back(MakeTrace(1, 7, 1000));
  a.events.push_back({10, "resize"});
  a.type_names[7] = "SHORT";

  TelemetrySnapshot b;
  b.counters["n"] = 3;
  b.counters["m"] = 1;
  b.gauges["g"] = 9;
  b.histograms["h"].Add(300);
  b.traces.push_back(MakeTrace(2, 7, 2000));
  b.events.push_back({20, "reservation"});

  a.Merge(b);
  EXPECT_EQ(a.counter("n"), 8u);
  EXPECT_EQ(a.counter("m"), 1u);
  EXPECT_EQ(a.gauge("g"), 9);  // gauges take the newer value
  EXPECT_EQ(a.histograms.at("h").Count(), 2u);
  EXPECT_EQ(a.traces.size(), 2u);
  EXPECT_EQ(a.events.size(), 2u);
  EXPECT_EQ(a.type_names.at(7), "SHORT");
}

TEST(TelemetrySnapshot, StageBreakdownSumsToTotal) {
  TelemetrySnapshot snap;
  snap.type_names[3] = "GET";
  for (uint64_t i = 0; i < 10; ++i) {
    snap.traces.push_back(MakeTrace(i, 3, 1000 + static_cast<Nanos>(i)));
  }
  const auto breakdown = snap.StageBreakdown();
  ASSERT_TRUE(breakdown.contains(3));
  const TypeStageBreakdown& b = breakdown.at(3);
  EXPECT_EQ(b.name, "GET");
  EXPECT_EQ(b.traces, 10u);
  // Stages are 10 ns apart: preprocess 20, queueing/handoff/service/reply 10.
  EXPECT_EQ(b.preprocess.Mean(), 20.0);
  EXPECT_EQ(b.queueing.Mean(), 10.0);
  EXPECT_EQ(b.service.Mean(), 10.0);
  EXPECT_EQ(b.total.Mean(), 60.0);
  const double parts = b.preprocess.Mean() + b.queueing.Mean() +
                       b.handoff.Mean() + b.service.Mean() + b.reply.Mean();
  EXPECT_EQ(parts, b.total.Mean());
}

TEST(TelemetrySnapshot, ExportersRoundTrip) {
  TelemetrySnapshot snap;
  snap.counters["scheduler.completed"] = 123;
  snap.gauges["scheduler.idle_workers"] = 4;
  snap.histograms["engine.latency"].Add(5000);
  snap.type_names[1] = "SHORT";
  snap.traces.push_back(MakeTrace(9, 1, 1000));
  snap.events.push_back({77, "reservation update"});

  const std::string table = snap.ToTable();
  EXPECT_NE(table.find("scheduler.completed"), std::string::npos);
  EXPECT_NE(table.find("123"), std::string::npos);

  const std::string json = snap.ToJson();
  EXPECT_NE(json.find("\"scheduler.completed\""), std::string::npos);
  EXPECT_NE(json.find("123"), std::string::npos);
  EXPECT_NE(json.find("\"scheduler.idle_workers\""), std::string::npos);
  EXPECT_NE(json.find("reservation update"), std::string::npos);

  const std::string report = snap.StageReport();
  EXPECT_NE(report.find("SHORT"), std::string::npos);
  EXPECT_NE(report.find("queueing"), std::string::npos);
}

TEST(Telemetry, FacadeSnapshotsRingsEventsAndRegistry) {
  TelemetryConfig config;
  config.sample_every = 1;
  Telemetry telemetry(config, /*num_rings=*/2);
  EXPECT_TRUE(telemetry.tracing_enabled());
  EXPECT_EQ(telemetry.sample_every(), 1u);
  telemetry.registry().GetCounter("a").Add(2);
  telemetry.ring(0).Push(MakeTrace(1, 0, 1000));
  telemetry.ring(1).Push(MakeTrace(2, 0, 2000));
  telemetry.RecordEvent(5, "hello");

  const TelemetrySnapshot snap = telemetry.Snapshot();
  EXPECT_EQ(snap.counter("a"), 2u);
  EXPECT_EQ(snap.counter("telemetry.traces_recorded"), 2u);
  EXPECT_EQ(snap.traces.size(), 2u);
  ASSERT_EQ(snap.events.size(), 1u);
  EXPECT_EQ(snap.events[0].what, "hello");
}

TEST(Telemetry, DisabledTracingReportsSampleEveryZero) {
  TelemetryConfig config;
  config.enable_tracing = false;
  Telemetry telemetry(config);
  EXPECT_FALSE(telemetry.tracing_enabled());
  EXPECT_EQ(telemetry.sample_every(), 0u);
}

TEST(Validation, TelemetryConfig) {
  TelemetryConfig ok;
  EXPECT_EQ(ok.Validate(), "");
  TelemetryConfig bad;
  bad.trace_ring_capacity = 0;
  EXPECT_NE(bad.Validate(), "");
  bad.enable_tracing = false;  // no tracing -> no ring needed
  EXPECT_EQ(bad.Validate(), "");
}

TEST(Validation, SchedulerConfigCatchesMisconfigurations) {
  SchedulerConfig ok;
  EXPECT_EQ(ok.Validate(), "");

  SchedulerConfig zero_workers;
  zero_workers.num_workers = 0;
  EXPECT_NE(zero_workers.Validate(), "");

  SchedulerConfig zero_capacity;
  zero_capacity.typed_queue_capacity = 0;
  EXPECT_NE(zero_capacity.Validate(), "");

  SchedulerConfig spillway;
  spillway.num_workers = 2;
  spillway.num_spillway = 3;
  EXPECT_NE(spillway.Validate(), "");

  SchedulerConfig delta;
  delta.delta = 1.0;
  EXPECT_NE(delta.Validate(), "");

  SchedulerConfig static_all;
  static_all.mode = PolicyMode::kDarcStatic;
  static_all.num_workers = 2;
  static_all.static_reserved = 2;
  EXPECT_NE(static_all.Validate(), "");

  EXPECT_THROW(DarcScheduler scheduler(zero_workers), std::invalid_argument);
}

TEST(Validation, RuntimeConfigCatchesMisconfigurations) {
  RuntimeConfig ok;
  EXPECT_EQ(ok.Validate(), "");

  RuntimeConfig zero_workers;
  zero_workers.num_workers = 0;
  EXPECT_NE(zero_workers.Validate(), "");

  RuntimeConfig small_pool;
  small_pool.pool_buffers = 16;
  small_pool.nic_queue_depth = 1024;
  EXPECT_NE(small_pool.Validate(), "");

  RuntimeConfig zero_channel;
  zero_channel.channel_depth = 0;
  EXPECT_NE(zero_channel.Validate(), "");

  RuntimeConfig bad_telemetry;
  bad_telemetry.telemetry.trace_ring_capacity = 0;
  EXPECT_NE(bad_telemetry.Validate(), "");

  EXPECT_THROW(Persephone server(zero_workers), std::invalid_argument);
}

}  // namespace
}  // namespace psp
