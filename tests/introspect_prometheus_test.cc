// Format contract for the Prometheus text exposition renderer
// (src/introspect/prometheus.h): name sanitisation, label escaping, counter
// vs gauge vs summary shapes, worker-label folding, latest-interval gauges,
// and byte determinism.
#include "src/introspect/prometheus.h"

#include <gtest/gtest.h>

#include <sstream>

#include "src/telemetry/snapshot.h"

namespace psp {
namespace {

// Splits the exposition into lines for targeted assertions.
std::vector<std::string> Lines(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    out.push_back(line);
  }
  return out;
}

bool Contains(const std::string& text, const std::string& needle) {
  return text.find(needle) != std::string::npos;
}

TEST(Prometheus, MetricNameSanitisation) {
  EXPECT_EQ(PrometheusMetricName("scheduler.dispatched"),
            "scheduler_dispatched");
  EXPECT_EQ(PrometheusMetricName("a-b c"), "a_b_c");
  EXPECT_EQ(PrometheusMetricName("ns:metric"), "ns:metric");
  // Leading digit gets an underscore prefix.
  EXPECT_EQ(PrometheusMetricName("9lives"), "_9lives");
}

TEST(Prometheus, LabelEscaping) {
  EXPECT_EQ(PrometheusLabelEscape("plain"), "plain");
  EXPECT_EQ(PrometheusLabelEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(PrometheusLabelEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(PrometheusLabelEscape("a\nb"), "a\\nb");
}

TEST(Prometheus, CounterGaugeSummaryShapes) {
  TelemetrySnapshot snap;
  snap.counters["scheduler.dispatched"] = 42;
  snap.gauges["engine.num_workers"] = 14;
  snap.histograms["latency"].Add(1000);
  snap.histograms["latency"].Add(3000);

  const std::string text = RenderPrometheusText(snap);

  // Counter: HELP + TYPE + _total suffix.
  EXPECT_TRUE(Contains(text,
                       "# TYPE psp_scheduler_dispatched_total counter\n"));
  EXPECT_TRUE(Contains(text, "\npsp_scheduler_dispatched_total 42\n"));
  // Gauge: no suffix.
  EXPECT_TRUE(Contains(text, "# TYPE psp_engine_num_workers gauge\n"));
  EXPECT_TRUE(Contains(text, "\npsp_engine_num_workers 14\n"));
  // Summary: quantiles + _sum + _count.
  EXPECT_TRUE(Contains(text, "# TYPE psp_latency summary\n"));
  EXPECT_TRUE(Contains(text, "psp_latency{quantile=\"0.5\"}"));
  EXPECT_TRUE(Contains(text, "psp_latency{quantile=\"0.99\"}"));
  EXPECT_TRUE(Contains(text, "psp_latency{quantile=\"0.999\"}"));
  EXPECT_TRUE(Contains(text, "psp_latency_sum 4000\n"));
  EXPECT_TRUE(Contains(text, "psp_latency_count 2\n"));
  // Liveness marker always present.
  EXPECT_TRUE(Contains(text, "\npsp_up 1\n"));
}

TEST(Prometheus, WorkerMetricsFoldIntoLabels) {
  TelemetrySnapshot snap;
  snap.counters["worker.0.requests"] = 10;
  snap.counters["worker.3.requests"] = 30;
  snap.gauges["worker.0.busy_permille"] = 512;

  const std::string text = RenderPrometheusText(snap);

  EXPECT_TRUE(
      Contains(text, "psp_worker_requests_total{worker=\"0\"} 10\n"));
  EXPECT_TRUE(
      Contains(text, "psp_worker_requests_total{worker=\"3\"} 30\n"));
  EXPECT_TRUE(
      Contains(text, "psp_worker_busy_permille{worker=\"0\"} 512\n"));
  // The folded family gets exactly one TYPE header.
  size_t headers = 0;
  for (const std::string& line : Lines(text)) {
    if (line == "# TYPE psp_worker_requests_total counter") {
      ++headers;
    }
  }
  EXPECT_EQ(headers, 1u);
  // The raw dotted name must not leak through.
  EXPECT_FALSE(Contains(text, "worker_0_requests"));
}

// Golden-format contract for the socket-ingress counter families the
// runtime folds out of UdpIngressStats: flat ingress.* counters plus the
// per-shard rx fold into a shard label.
TEST(Prometheus, IngressCountersGoldenFormat) {
  TelemetrySnapshot snap;
  snap.counters["ingress.rx_datagrams"] = 1000;
  snap.counters["ingress.malformed"] = 7;
  snap.counters["ingress.ring_full_drops"] = 2;
  snap.counters["ingress.tx_datagrams"] = 998;
  snap.counters["ingress.tx_drops"] = 0;
  snap.counters["ingress.poll_sleeps"] = 55;
  snap.counters["ingress.poll_slept_nanos"] = 123456;
  snap.counters["ingress.shard.0.rx_datagrams"] = 600;
  snap.counters["ingress.shard.1.rx_datagrams"] = 400;

  const std::string text = RenderPrometheusText(snap);

  // Flat families: HELP + TYPE + _total, exact sample lines.
  EXPECT_TRUE(Contains(text, "# TYPE psp_ingress_rx_datagrams_total counter\n"));
  EXPECT_TRUE(Contains(text, "\npsp_ingress_rx_datagrams_total 1000\n"));
  EXPECT_TRUE(Contains(text, "# TYPE psp_ingress_malformed_total counter\n"));
  EXPECT_TRUE(Contains(text, "\npsp_ingress_malformed_total 7\n"));
  EXPECT_TRUE(Contains(text, "\npsp_ingress_ring_full_drops_total 2\n"));
  EXPECT_TRUE(Contains(text, "\npsp_ingress_tx_datagrams_total 998\n"));
  EXPECT_TRUE(Contains(text, "\npsp_ingress_tx_drops_total 0\n"));
  EXPECT_TRUE(Contains(text, "# TYPE psp_ingress_poll_sleeps_total counter\n"));
  EXPECT_TRUE(Contains(text, "\npsp_ingress_poll_sleeps_total 55\n"));
  EXPECT_TRUE(Contains(text, "\npsp_ingress_poll_slept_nanos_total 123456\n"));

  // Per-shard rx folds into one family with a shard label, like workers.
  EXPECT_TRUE(Contains(
      text, "psp_ingress_shard_rx_datagrams_total{shard=\"0\"} 600\n"));
  EXPECT_TRUE(Contains(
      text, "psp_ingress_shard_rx_datagrams_total{shard=\"1\"} 400\n"));
  size_t headers = 0;
  for (const std::string& line : Lines(text)) {
    if (line == "# TYPE psp_ingress_shard_rx_datagrams_total counter") {
      ++headers;
    }
  }
  EXPECT_EQ(headers, 1u);
  // The raw dotted per-shard name must not leak through as a flat metric.
  EXPECT_FALSE(Contains(text, "ingress_shard_0_rx_datagrams"));
}

// The event-queue backend surface (ClusterEngine::telemetry_snapshot in
// owned-simulation mode): backend counters as psp_sim_engine_*_total, the
// active-backend flag and pending depth as gauges.
TEST(Prometheus, SimEngineBackendGoldenFormat) {
  TelemetrySnapshot snap;
  snap.counters["sim.engine.executed"] = 123456;
  snap.counters["sim.engine.cascades"] = 789;
  snap.counters["sim.engine.rollovers"] = 42;
  snap.counters["sim.engine.backend_switches"] = 1;
  snap.counters["sim.engine.arena_allocations"] = 9;
  snap.gauges["sim.engine.wheel_active"] = 1;
  snap.gauges["sim.engine.pending_events"] = 77;

  const std::string text = RenderPrometheusText(snap);

  EXPECT_TRUE(Contains(text, "# TYPE psp_sim_engine_executed_total counter\n"));
  EXPECT_TRUE(Contains(text, "\npsp_sim_engine_executed_total 123456\n"));
  EXPECT_TRUE(Contains(text, "# TYPE psp_sim_engine_cascades_total counter\n"));
  EXPECT_TRUE(Contains(text, "\npsp_sim_engine_cascades_total 789\n"));
  EXPECT_TRUE(Contains(text, "\npsp_sim_engine_rollovers_total 42\n"));
  EXPECT_TRUE(Contains(text, "\npsp_sim_engine_backend_switches_total 1\n"));
  EXPECT_TRUE(Contains(text, "\npsp_sim_engine_arena_allocations_total 9\n"));
  EXPECT_TRUE(Contains(text, "# TYPE psp_sim_engine_wheel_active gauge\n"));
  EXPECT_TRUE(Contains(text, "\npsp_sim_engine_wheel_active 1\n"));
  EXPECT_TRUE(Contains(text, "# TYPE psp_sim_engine_pending_events gauge\n"));
  EXPECT_TRUE(Contains(text, "\npsp_sim_engine_pending_events 77\n"));
}

// Golden-format contract for the deadline-tier families: flat totals render
// through the generic counter path, the per-type split folds into a type
// label, and dispatch-time slack comes out as a summary (sum/count pair,
// negative sums allowed). Deadline-free snapshots render none of it.
TEST(Prometheus, DeadlineFamiliesGoldenFormat) {
  TelemetrySnapshot snap;
  snap.counters["deadline.stamped"] = 900;
  snap.counters["deadline.missed"] = 12;
  snap.counters["deadline.met"] = 888;
  snap.counters["deadline.shed"] = 5;
  DeadlineTypeStats short_type;
  short_type.type = 1;
  short_type.name = "SHORT";
  short_type.missed = 2;
  short_type.shed = 0;
  short_type.slack_sum_nanos = 123456;
  short_type.slack_samples = 450;
  short_type.budget_nanos = 20000;
  DeadlineTypeStats long_type;
  long_type.type = 2;
  long_type.name = "LONG";
  long_type.missed = 10;
  long_type.shed = 5;
  long_type.slack_sum_nanos = -789;  // dispatches past the deadline
  long_type.slack_samples = 440;
  long_type.budget_nanos = 150000;
  snap.deadline_types = {short_type, long_type};

  const std::string text = RenderPrometheusText(snap);

  // Flat totals via the generic counter renderer.
  EXPECT_TRUE(Contains(text,
                       "# TYPE psp_deadline_stamped_total counter\n"));
  EXPECT_TRUE(Contains(text, "\npsp_deadline_stamped_total 900\n"));
  EXPECT_TRUE(Contains(text, "\npsp_deadline_missed_total 12\n"));
  EXPECT_TRUE(Contains(text, "\npsp_deadline_met_total 888\n"));
  EXPECT_TRUE(Contains(text, "\npsp_deadline_shed_total 5\n"));

  // Per-type folds with a type label, one TYPE header per family.
  EXPECT_TRUE(Contains(text,
                       "# TYPE psp_deadline_type_missed_total counter\n"));
  EXPECT_TRUE(
      Contains(text, "psp_deadline_type_missed_total{type=\"SHORT\"} 2\n"));
  EXPECT_TRUE(
      Contains(text, "psp_deadline_type_missed_total{type=\"LONG\"} 10\n"));
  EXPECT_TRUE(
      Contains(text, "psp_deadline_type_shed_total{type=\"LONG\"} 5\n"));
  EXPECT_TRUE(Contains(text, "# TYPE psp_deadline_type_budget_ns gauge\n"));
  EXPECT_TRUE(
      Contains(text, "psp_deadline_type_budget_ns{type=\"SHORT\"} 20000\n"));

  // Slack summary: per-type sum/count, negative sums render as-is.
  EXPECT_TRUE(Contains(text, "# TYPE psp_deadline_type_slack_ns summary\n"));
  EXPECT_TRUE(Contains(
      text, "psp_deadline_type_slack_ns_sum{type=\"SHORT\"} 123456\n"));
  EXPECT_TRUE(Contains(
      text, "psp_deadline_type_slack_ns_count{type=\"SHORT\"} 450\n"));
  EXPECT_TRUE(
      Contains(text, "psp_deadline_type_slack_ns_sum{type=\"LONG\"} -789\n"));
  size_t headers = 0;
  for (const std::string& line : Lines(text)) {
    if (line == "# TYPE psp_deadline_type_missed_total counter") {
      ++headers;
    }
  }
  EXPECT_EQ(headers, 1u);

  // A deadline-free snapshot renders no deadline family at all — the tier is
  // pay-for-what-you-use and existing scrapes stay byte-identical.
  const std::string bare = RenderPrometheusText(TelemetrySnapshot{});
  EXPECT_FALSE(Contains(bare, "psp_deadline"));
}

// Interval deadline gauges ride the latest time-series record and are
// omitted entirely for deadline-free intervals (skip-if-all-zero).
TEST(Prometheus, DeadlineIntervalGauges) {
  TelemetrySnapshot snap;
  snap.type_names[1] = "SHORT";
  snap.type_names[2] = "LONG";
  IntervalRecord rec;
  rec.seq = 3;
  TypeIntervalStats s1;
  s1.type = 1;
  s1.deadline_misses = 4;
  s1.deadline_sheds = 1;
  TypeIntervalStats s2;
  s2.type = 2;
  rec.types = {s1, s2};
  snap.timeseries.push_back(rec);

  const std::string text = RenderPrometheusText(snap);
  EXPECT_TRUE(Contains(
      text, "psp_deadline_type_interval_misses{type=\"SHORT\"} 4\n"));
  EXPECT_TRUE(Contains(
      text, "psp_deadline_type_interval_sheds{type=\"SHORT\"} 1\n"));

  // All-zero interval: the families disappear from the scrape.
  TelemetrySnapshot quiet;
  quiet.type_names[1] = "SHORT";
  IntervalRecord calm;
  calm.seq = 4;
  TypeIntervalStats c1;
  c1.type = 1;
  c1.arrivals = 10;
  calm.types = {c1};
  quiet.timeseries.push_back(calm);
  const std::string quiet_text = RenderPrometheusText(quiet);
  EXPECT_FALSE(Contains(quiet_text, "psp_deadline_type_interval"));
}

TEST(Prometheus, LatestIntervalPerTypeGauges) {
  TelemetrySnapshot snap;
  snap.type_names[0] = "SHORT";
  snap.type_names[1] = "LO\"NG";  // exercises label escaping in type names

  IntervalRecord rec;
  rec.seq = 7;
  rec.end = 123456789;
  rec.arrival_rate_rps = 1000.5;
  rec.completion_rate_rps = 999.5;
  rec.reservation_updates = 2;
  TypeIntervalStats s0;
  s0.type = 0;
  s0.arrivals = 90;
  s0.completions = 88;
  s0.queue_depth = 4;
  s0.reserved_workers = 1;
  s0.slowdown_p99_milli = 1500;
  TypeIntervalStats s1;
  s1.type = 1;
  s1.arrivals = 10;
  s1.queue_depth = -1;  // sentinel: engine provided no sampler
  s1.reserved_workers = -1;
  rec.types = {s0, s1};
  rec.worker_busy_permille = {250, 750};
  snap.timeseries.push_back(rec);

  const std::string text = RenderPrometheusText(snap);

  EXPECT_TRUE(Contains(text, "\npsp_interval_seq 7\n"));
  EXPECT_TRUE(
      Contains(text, "psp_type_interval_arrivals{type=\"SHORT\"} 90\n"));
  EXPECT_TRUE(
      Contains(text, "psp_type_interval_arrivals{type=\"LO\\\"NG\"} 10\n"));
  EXPECT_TRUE(Contains(text, "psp_type_queue_depth{type=\"SHORT\"} 4\n"));
  // -1 sentinels are omitted, not rendered.
  EXPECT_FALSE(Contains(text, "psp_type_queue_depth{type=\"LO\\\"NG\"}"));
  EXPECT_TRUE(
      Contains(text, "psp_type_slowdown_p99_milli{type=\"SHORT\"} 1500\n"));
  EXPECT_TRUE(
      Contains(text, "psp_worker_interval_busy_permille{worker=\"1\"} 750\n"));
}

TEST(Prometheus, OnlyLatestIntervalRendered) {
  TelemetrySnapshot snap;
  IntervalRecord old;
  old.seq = 1;
  IntervalRecord latest;
  latest.seq = 2;
  snap.timeseries = {old, latest};
  const std::string text = RenderPrometheusText(snap);
  EXPECT_TRUE(Contains(text, "\npsp_interval_seq 2\n"));
  EXPECT_FALSE(Contains(text, "\npsp_interval_seq 1\n"));
}

TEST(Prometheus, EveryLineWellFormed) {
  TelemetrySnapshot snap;
  snap.counters["a.b"] = 1;
  snap.gauges["worker.2.depth"] = 3;
  snap.histograms["h"].Add(5);
  for (const std::string& line : Lines(RenderPrometheusText(snap))) {
    if (line.empty()) {
      continue;
    }
    if (line[0] == '#') {
      EXPECT_TRUE(line.rfind("# HELP ", 0) == 0 ||
                  line.rfind("# TYPE ", 0) == 0)
          << line;
      continue;
    }
    // Sample lines: name[{labels}] SP value, exactly one separating space
    // outside the label block.
    const size_t brace = line.find('{');
    const size_t close = line.rfind('}');
    const size_t sep = close != std::string::npos && brace != std::string::npos
                           ? line.find(' ', close)
                           : line.find(' ');
    ASSERT_NE(sep, std::string::npos) << line;
    EXPECT_GT(sep, 0u) << line;
    EXPECT_LT(sep + 1, line.size()) << line;
  }
}

TEST(Prometheus, ByteDeterministic) {
  TelemetrySnapshot snap;
  snap.counters["x"] = 1;
  snap.counters["worker.0.requests"] = 2;
  snap.gauges["g"] = -5;
  snap.histograms["h"].Add(7);
  snap.type_names[3] = "T";
  IntervalRecord rec;
  rec.seq = 1;
  TypeIntervalStats t;
  t.type = 3;
  t.arrivals = 9;
  rec.types.push_back(t);
  snap.timeseries.push_back(rec);

  EXPECT_EQ(RenderPrometheusText(snap), RenderPrometheusText(snap));
}

}  // namespace
}  // namespace psp
