// Unit tests for the windowed time-series recorder, the SLO monitor, and the
// flight recorder (src/telemetry/{timeseries,slo}.h).
#include "src/telemetry/timeseries.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/telemetry/slo.h"
#include "src/telemetry/telemetry.h"

namespace psp {
namespace {

TimeSeriesConfig SmallConfig() {
  TimeSeriesConfig config;
  config.enabled = true;
  config.interval = 1000;  // 1 µs intervals keep the test arithmetic obvious
  config.capacity = 4;
  config.slowdown_sample_every = 1;
  return config;
}

// --- SlotHistogram ----------------------------------------------------------

TEST(SlotHistogram, SmallValuesAreExact) {
  for (uint64_t v = 0; v < SlotHistogram::kSubBuckets; ++v) {
    EXPECT_EQ(SlotHistogram::ValueFor(SlotHistogram::IndexFor(v)),
              static_cast<int64_t>(v));
  }
}

TEST(SlotHistogram, LargeValuesKeepRelativePrecision) {
  for (uint64_t v : {100ull, 5000ull, 123456ull, 1ull << 40}) {
    const size_t idx = SlotHistogram::IndexFor(v);
    ASSERT_LT(idx, SlotHistogram::kSlots);
    const int64_t rep = SlotHistogram::ValueFor(idx);
    // The representative is the slot's upper bound: >= v, within ~2/kSubBuckets.
    EXPECT_GE(rep, static_cast<int64_t>(v));
    EXPECT_LE(static_cast<double>(rep), static_cast<double>(v) * 1.07);
  }
}

TEST(SlotHistogram, IndexIsMonotonic) {
  size_t prev = 0;
  for (uint64_t v = 0; v < 100000; v += 37) {
    const size_t idx = SlotHistogram::IndexFor(v);
    EXPECT_GE(idx, prev);
    prev = idx;
  }
}

TEST(DeltaPercentile, PicksRankedValue) {
  uint64_t delta[SlotHistogram::kSlots] = {};
  // Ten samples of value 5, ten of value 20 (both exact slots).
  delta[SlotHistogram::IndexFor(5)] = 10;
  delta[SlotHistogram::IndexFor(20)] = 10;
  EXPECT_EQ(DeltaPercentile(delta, SlotHistogram::kSlots, 50), 5);
  EXPECT_EQ(DeltaPercentile(delta, SlotHistogram::kSlots, 99), 20);
  uint64_t empty[SlotHistogram::kSlots] = {};
  EXPECT_EQ(DeltaPercentile(empty, SlotHistogram::kSlots, 99), 0);
}

// --- TimeSeriesRecorder -----------------------------------------------------

TEST(TimeSeriesRecorder, IntervalsAreDeltasOnAGrid) {
  TimeSeriesRecorder rec(SmallConfig());
  const size_t a = rec.RegisterSeries(1, "A");
  const size_t b = rec.RegisterSeries(2, "B");

  // First record pins the grid to floor(now / interval) = 0.
  rec.RecordArrival(a, 100);
  rec.RecordArrival(a, 200);
  rec.RecordArrival(b, 300);
  rec.RecordCompletion(a, /*latency=*/500, /*service=*/100, /*now=*/600);

  // Crossing the boundary closes [0, 1000).
  rec.RecordArrival(a, 1100);
  auto history = rec.History();
  ASSERT_EQ(history.size(), 1u);
  EXPECT_EQ(history[0].seq, 0u);
  EXPECT_EQ(history[0].start, 0);
  EXPECT_EQ(history[0].end, 1000);
  ASSERT_EQ(history[0].types.size(), 2u);
  EXPECT_EQ(history[0].types[a].arrivals, 2u);
  EXPECT_EQ(history[0].types[a].completions, 1u);
  EXPECT_EQ(history[0].types[b].arrivals, 1u);
  EXPECT_EQ(history[0].types[b].completions, 0u);
  // slowdown = 500/100 = 5.0x → 5000 milli, exact-ish in the log-linear grid.
  EXPECT_GE(history[0].types[a].slowdown_p50_milli, 5000);
  EXPECT_LE(history[0].types[a].slowdown_p50_milli, 5200);

  // The second interval only saw the one arrival at t=1100 (deltas, not
  // cumulative values).
  rec.Roll(2000);
  history = rec.History();
  ASSERT_EQ(history.size(), 2u);
  EXPECT_EQ(history[1].seq, 1u);
  EXPECT_EQ(history[1].types[a].arrivals, 1u);
  EXPECT_EQ(history[1].types[a].completions, 0u);
}

TEST(TimeSeriesRecorder, FlushClosesPartialInterval) {
  TimeSeriesRecorder rec(SmallConfig());
  const size_t a = rec.RegisterSeries(1, "A");
  rec.RecordArrival(a, 100);
  const auto closed = rec.Roll(450, /*flush=*/true);
  ASSERT_EQ(closed.size(), 1u);
  EXPECT_EQ(closed[0].start, 0);
  EXPECT_EQ(closed[0].end, 450);
  EXPECT_EQ(closed[0].types[a].arrivals, 1u);
  // The grid is unchanged: the next close still lands on the 1000 boundary.
  rec.RecordArrival(a, 500);
  rec.Roll(1000);
  const auto history = rec.History();
  ASSERT_EQ(history.size(), 2u);
  EXPECT_EQ(history[1].start, 450);
  EXPECT_EQ(history[1].end, 1000);
}

TEST(TimeSeriesRecorder, CapacityBoundsHistory) {
  TimeSeriesRecorder rec(SmallConfig());  // capacity 4
  rec.RegisterSeries(1, "A");
  rec.Roll(100);  // align
  for (Nanos t = 1000; t <= 7000; t += 1000) {
    rec.Roll(t);
  }
  const auto history = rec.History();
  ASSERT_EQ(history.size(), 4u);
  EXPECT_EQ(rec.intervals_closed(), 7u);
  // Oldest dropped first: the retained window is the last four.
  EXPECT_EQ(history.front().seq, 3u);
  EXPECT_EQ(history.back().seq, 6u);
  for (size_t i = 1; i < history.size(); ++i) {
    EXPECT_EQ(history[i].seq, history[i - 1].seq + 1);
    EXPECT_EQ(history[i].start, history[i - 1].end);
  }
}

TEST(TimeSeriesRecorder, LongIdleGapRealignsInsteadOfGrinding) {
  TimeSeriesRecorder rec(SmallConfig());
  const size_t a = rec.RegisterSeries(1, "A");
  rec.RecordArrival(a, 100);
  // A gap far beyond capacity*interval: one stale close + realign.
  rec.Roll(1000 * 1000);
  auto history = rec.History();
  ASSERT_EQ(history.size(), 1u);
  EXPECT_EQ(history[0].types[a].arrivals, 1u);
  // The grid resumed at the new position.
  rec.RecordArrival(a, 1000 * 1000 + 10);
  rec.Roll(1000 * 1000 + 1000);
  history = rec.History();
  ASSERT_EQ(history.size(), 2u);
  EXPECT_EQ(history[1].types[a].arrivals, 1u);
}

TEST(TimeSeriesRecorder, ViolationCountingUsesTarget) {
  TimeSeriesRecorder rec(SmallConfig());
  const size_t a = rec.RegisterSeries(1, "A");
  rec.SetSlowdownTarget(a, 10.0);
  rec.RecordCompletion(a, /*latency=*/500, /*service=*/100, 100);   // 5x: ok
  rec.RecordCompletion(a, /*latency=*/2000, /*service=*/100, 200);  // 20x!
  rec.RecordCompletion(a, /*latency=*/1000, /*service=*/100, 300);  // 10x: ok
  rec.Roll(1000);
  const auto history = rec.History();
  ASSERT_EQ(history.size(), 1u);
  EXPECT_EQ(history[0].types[a].completions, 3u);
  EXPECT_EQ(history[0].types[a].slo_violations, 1u);
}

TEST(TimeSeriesRecorder, GaugeSamplerStampsIntervals) {
  TimeSeriesRecorder rec(SmallConfig());
  const size_t a = rec.RegisterSeries(1, "A");
  rec.set_gauge_sampler([](IntervalRecord* record) {
    for (auto& t : record->types) {
      t.queue_depth = 7;
      t.reserved_workers = 3;
    }
    record->worker_busy_permille = {250, 750};
  });
  rec.RecordArrival(a, 100);
  rec.Roll(1000);
  const auto history = rec.History();
  ASSERT_EQ(history.size(), 1u);
  EXPECT_EQ(history[0].types[a].queue_depth, 7);
  EXPECT_EQ(history[0].types[a].reserved_workers, 3);
  ASSERT_EQ(history[0].worker_busy_permille.size(), 2u);
  EXPECT_EQ(history[0].worker_busy_permille[1], 750);
  // Without a sampler the gauges stay at the -1 sentinel.
  TimeSeriesRecorder bare(SmallConfig());
  const size_t slot = bare.RegisterSeries(1, "A");
  bare.RecordArrival(slot, 100);
  bare.Roll(1000);
  EXPECT_EQ(bare.History()[0].types[slot].queue_depth, -1);
}

TEST(TimeSeriesRecorder, CsvSchemaIsStable) {
  TimeSeriesRecorder rec(SmallConfig());
  const size_t a = rec.RegisterSeries(1, "A");
  rec.RecordArrival(a, 100);
  rec.Roll(1000);
  const std::string csv = rec.ToCsv();
  std::istringstream lines(csv);
  std::string header;
  ASSERT_TRUE(std::getline(lines, header));
  EXPECT_EQ(header,
            "seq,start_ns,end_ns,type,name,arrivals,completions,drops,"
            "slo_violations,queue_depth,reserved_workers,slowdown_samples,"
            "slowdown_p50_milli,slowdown_p99_milli,slowdown_p999_milli,"
            "interval_reservation_updates,arrival_rps,completion_rps,"
            "worker_busy_permille");
  std::string row;
  ASSERT_TRUE(std::getline(lines, row));
  EXPECT_NE(row.find(",A,"), std::string::npos);
}

TEST(TimeSeriesRecorder, SamplingCadenceIsRespected) {
  TimeSeriesConfig config = SmallConfig();
  config.slowdown_sample_every = 4;
  TimeSeriesRecorder rec(config);
  const size_t a = rec.RegisterSeries(1, "A");
  for (int i = 0; i < 16; ++i) {
    rec.RecordCompletion(a, 200, 100, 100 + i);
  }
  rec.Roll(1000);
  const auto history = rec.History();
  EXPECT_EQ(history[0].types[a].completions, 16u);
  EXPECT_EQ(history[0].types[a].slowdown_samples, 4u);
}

// --- SloMonitor -------------------------------------------------------------

SloConfig MonitorConfig() {
  SloConfig config;
  config.targets.push_back(SloTarget{"A", 10.0, 0.01});
  config.window_intervals = 2;
  config.burn_rate_alert = 1.0;
  config.min_window_completions = 10;
  config.cooldown_intervals = 4;
  return config;
}

IntervalRecord MakeInterval(uint64_t seq, uint64_t completions,
                            uint64_t violations) {
  IntervalRecord rec;
  rec.seq = seq;
  rec.start = static_cast<Nanos>(seq) * 1000;
  rec.end = rec.start + 1000;
  TypeIntervalStats t;
  t.type = 1;
  t.completions = completions;
  t.slo_violations = violations;
  rec.types.push_back(t);
  return rec;
}

TEST(SloMonitor, AlertsOnBurnRateAndCoolsDown) {
  SloMonitor monitor(MonitorConfig());
  EXPECT_DOUBLE_EQ(monitor.TargetSlowdownFor("A"), 10.0);
  EXPECT_DOUBLE_EQ(monitor.TargetSlowdownFor("Z"), 0.0);
  const std::map<uint32_t, std::string> names = {{1, "A"}};

  // 5/100 violations against a 1% budget → burn rate 5.0 ≥ 1.0.
  auto alerts = monitor.OnInterval(MakeInterval(0, 100, 5), names);
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].type_name, "A");
  EXPECT_NEAR(alerts[0].burn_rate, 5.0, 1e-9);
  EXPECT_EQ(alerts[0].interval_seq, 0u);
  EXPECT_EQ(alerts[0].window_violations, 5u);

  // Cooldown: same breach in the next interval stays silent.
  alerts = monitor.OnInterval(MakeInterval(1, 100, 5), names);
  EXPECT_TRUE(alerts.empty());

  // Past the cooldown (4 intervals), it re-alerts.
  alerts = monitor.OnInterval(MakeInterval(5, 100, 5), names);
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(monitor.alerts_total(), 2u);
  EXPECT_EQ(monitor.alerts().size(), 2u);
}

TEST(SloMonitor, RespectsMinWindowCompletions) {
  SloMonitor monitor(MonitorConfig());
  const std::map<uint32_t, std::string> names = {{1, "A"}};
  // 100% violating, but only 5 completions (< min 10): startup noise guard.
  const auto alerts = monitor.OnInterval(MakeInterval(0, 5, 5), names);
  EXPECT_TRUE(alerts.empty());
}

TEST(SloMonitor, WithinBudgetStaysSilent) {
  SloMonitor monitor(MonitorConfig());
  const std::map<uint32_t, std::string> names = {{1, "A"}};
  for (uint64_t seq = 0; seq < 8; ++seq) {
    // 0.5% violating against a 1% budget → burn rate 0.5 < 1.0.
    const auto alerts = monitor.OnInterval(MakeInterval(seq, 1000, 5), names);
    EXPECT_TRUE(alerts.empty()) << "seq " << seq;
  }
  EXPECT_EQ(monitor.alerts_total(), 0u);
}

TEST(SloMonitor, TakeUndumpedDrainsOnce) {
  SloMonitor monitor(MonitorConfig());
  const std::map<uint32_t, std::string> names = {{1, "A"}};
  monitor.OnInterval(MakeInterval(0, 100, 50), names);
  auto undumped = monitor.TakeUndumped();
  ASSERT_EQ(undumped.size(), 1u);
  EXPECT_TRUE(monitor.TakeUndumped().empty());
  // The permanent alert log still holds it.
  EXPECT_EQ(monitor.alerts().size(), 1u);
}

// --- Flight recorder --------------------------------------------------------

TEST(FlightRecorder, BuildsSelfDescribingRecord) {
  SloAlert alert;
  alert.at = 5000;
  alert.interval_seq = 4;
  alert.type_name = "A";
  alert.burn_rate = 5.0;
  alert.window_completions = 100;
  alert.window_violations = 5;
  const std::vector<IntervalRecord> intervals = {MakeInterval(4, 100, 5)};
  TelemetrySnapshot snapshot;
  snapshot.counters["scheduler.completed"] = 100;
  const std::string record = BuildFlightRecord({alert}, intervals, snapshot);
  EXPECT_NE(record.find("\"alerts\""), std::string::npos);
  EXPECT_NE(record.find("\"A\""), std::string::npos);
  EXPECT_NE(record.find("\"intervals_csv\""), std::string::npos);
  EXPECT_NE(record.find("\"snapshot\""), std::string::npos);
  EXPECT_NE(record.find("scheduler.completed"), std::string::npos);
}

TEST(FlightRecorder, TelemetryDumpsOnViolationStorm) {
  const std::string path = "/tmp/psp_flight_test.json";
  std::remove(path.c_str());

  TelemetryConfig config;
  config.timeseries = SmallConfig();
  config.slo.targets.push_back(SloTarget{"A", 10.0, 0.01});
  config.slo.window_intervals = 2;
  config.slo.min_window_completions = 10;
  config.slo.flight_path = path;
  config.slo.flight_intervals = 8;
  ASSERT_EQ(config.Validate(), "");

  Telemetry telemetry(config);
  ASSERT_NE(telemetry.timeseries(), nullptr);
  ASSERT_NE(telemetry.slo(), nullptr);
  const size_t a = telemetry.RegisterSeries(1, "A");
  ASSERT_NE(a, SIZE_MAX);

  // The target armed the recorder's violation threshold via RegisterSeries:
  // a storm of 20x-slowdown completions must trip the monitor.
  TimeSeriesRecorder* rec = telemetry.timeseries();
  for (int i = 0; i < 50; ++i) {
    rec->RecordCompletion(a, /*latency=*/2000, /*service=*/100, 100 + i);
  }
  telemetry.AdvanceTimeSeries(1000);  // closes the interval, alert fires
  telemetry.AdvanceTimeSeries(1100);  // next watchdog tick performs the dump

  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "flight record was not written";
  std::stringstream contents;
  contents << in.rdbuf();
  EXPECT_NE(contents.str().find("\"alerts\""), std::string::npos);
  EXPECT_NE(contents.str().find("\"A\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(FlightRecorder, WriteTextFileRoundTrip) {
  const std::string path = "/tmp/psp_write_test.txt";
  ASSERT_TRUE(WriteTextFile(path, "hello\nworld\n"));
  std::ifstream in(path);
  std::stringstream contents;
  contents << in.rdbuf();
  EXPECT_EQ(contents.str(), "hello\nworld\n");
  std::remove(path.c_str());
  EXPECT_FALSE(WriteTextFile("/nonexistent-dir/x/y", "nope"));
}

}  // namespace
}  // namespace psp
