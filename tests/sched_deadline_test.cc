// Deadline tier (src/sched): DeadlineConfig resolution and validation, the
// slack-aware reservation math, the admission-control shed predicate's
// determinism, the scheduler-level shed counters, and the consistency of the
// scheduler's miss accounting with the simulator's metrics (both substrates
// judge misses at server-side completion time).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "src/core/scheduler.h"
#include "src/sched/admission.h"
#include "src/sched/deadline.h"
#include "src/sched/slack_reservation.h"
#include "src/sim/cluster.h"
#include "src/sim/policies/persephone.h"

namespace psp {
namespace {

// --- DeadlineConfig resolution -----------------------------------------------

TEST(DeadlineConfig, BudgetResolutionPrecedence) {
  DeadlineConfig config;
  config.targets.push_back({"abs", 50 * kMicrosecond, 0});
  config.targets.push_back({"both", 40 * kMicrosecond, 99.0});  // budget wins
  config.targets.push_back({"mult", 0, 3.0});
  config.default_slowdown = 2.0;

  const Nanos mean = 10 * kMicrosecond;
  EXPECT_EQ(config.BudgetFor("abs", mean), 50 * kMicrosecond);
  EXPECT_EQ(config.BudgetFor("both", mean), 40 * kMicrosecond);
  EXPECT_EQ(config.BudgetFor("mult", mean), 30 * kMicrosecond);
  // Untargeted types fall back to default_slowdown × mean.
  EXPECT_EQ(config.BudgetFor("other", mean), 20 * kMicrosecond);
  // A slowdown rule with no mean yields no deadline.
  EXPECT_EQ(config.BudgetFor("mult", 0), 0);
}

TEST(DeadlineConfig, EnabledAndValidation) {
  DeadlineConfig off;
  EXPECT_FALSE(off.enabled());
  EXPECT_TRUE(off.Validate().empty());

  DeadlineConfig on;
  on.targets.push_back({"A", 10 * kMicrosecond, 0});
  EXPECT_TRUE(on.enabled());
  EXPECT_TRUE(on.Validate().empty());

  DeadlineConfig dup = on;
  dup.targets.push_back({"A", 20 * kMicrosecond, 0});
  EXPECT_FALSE(dup.Validate().empty());

  DeadlineConfig bad_safety = on;
  bad_safety.shed = true;
  bad_safety.shed_safety = 0;
  EXPECT_FALSE(bad_safety.Validate().empty());
}

TEST(DeadlineConfig, SeedsFromSloTargets) {
  SloConfig slo;
  slo.targets.push_back({"SHORT", 10.0, 0.01});
  slo.targets.push_back({"LONG", 3.0, 0.01});
  const DeadlineConfig config = DeadlineConfigFromSlo(slo, /*shed=*/true);
  ASSERT_EQ(config.targets.size(), 2u);
  EXPECT_EQ(config.targets[0].type_name, "SHORT");
  EXPECT_EQ(config.targets[0].slowdown, 10.0);
  EXPECT_EQ(config.targets[1].slowdown, 3.0);
  EXPECT_TRUE(config.shed);
  // The enforced budget equals the observed objective: slowdown × mean.
  EXPECT_EQ(config.BudgetFor("LONG", 100 * kMicrosecond),
            300 * kMicrosecond);
}

// --- Slack-aware reservation math --------------------------------------------

TEST(SlackReservation, RiskWeightShape) {
  const double mean = 10'000;  // 10 µs
  // No budget: neutral weight.
  EXPECT_DOUBLE_EQ(SlackRiskWeight(mean, 0), 1.0);
  // Budget at 2× mean: urgency 1 → weight 2.
  EXPECT_DOUBLE_EQ(SlackRiskWeight(mean, 20'000), 2.0);
  // Generous 11× budget: urgency 0.1 → weight 1.1.
  EXPECT_NEAR(SlackRiskWeight(mean, 110'000), 1.1, 1e-9);
  // Budget at or below the mean: clamped to the fully-at-risk ceiling.
  EXPECT_DOUBLE_EQ(SlackRiskWeight(mean, 10'000), 1.0 + kMaxUrgency);
  EXPECT_DOUBLE_EQ(SlackRiskWeight(mean, 5'000), 1.0 + kMaxUrgency);
}

TEST(SlackReservation, NoBudgetsDegeneratesToPlainReservation) {
  const std::vector<TypeDemand> demands = {
      {0, 1'000, 0.3}, {1, 10'000, 0.3}, {2, 100'000, 0.4}};
  ReservationConfig config;
  config.num_workers = 14;
  const Reservation plain = ComputeReservation(demands, config);
  const Reservation slack =
      ComputeSlackReservation(demands, {0, 0, 0}, config);
  ASSERT_EQ(plain.groups.size(), slack.groups.size());
  for (size_t g = 0; g < plain.groups.size(); ++g) {
    EXPECT_EQ(plain.groups[g].reserved_count, slack.groups[g].reserved_count);
    EXPECT_EQ(plain.groups[g].members, slack.groups[g].members);
  }
}

TEST(SlackReservation, TightBudgetShiftsCoresTowardAtRiskType) {
  // Three δ-separated types; the 10 µs type runs against a 14 µs budget
  // (urgency 2.5 → weight 3.5), the others carry no deadline. Its inflated
  // demand must grow its reserved group at the expense of the loose types.
  const std::vector<TypeDemand> demands = {
      {0, 1'000, 0.3}, {1, 10'000, 0.3}, {2, 100'000, 0.4}};
  ReservationConfig config;
  config.num_workers = 14;
  const Reservation plain = ComputeReservation(demands, config);
  const Reservation slack =
      ComputeSlackReservation(demands, {0, 14'000, 0}, config);

  const auto reserved_of = [](const Reservation& r, TypeIndex t) {
    return r.groups[r.group_of_type[t]].reserved_count;
  };
  EXPECT_GT(reserved_of(slack, 1), reserved_of(plain, 1));
  EXPECT_LE(reserved_of(slack, 2), reserved_of(plain, 2));
  // Algorithm 2 invariants survive the re-weighting: every worker budget is
  // respected and every type still belongs to a group.
  uint32_t total = 0;
  for (const auto& g : slack.groups) {
    total += g.uses_spillway ? 0 : g.reserved_count;
  }
  EXPECT_LE(total, config.num_workers);
  EXPECT_EQ(slack.group_of_type.size(), demands.size());
}

// --- Admission-control shed predicate ----------------------------------------

TEST(Admission, PureAndDeterministic) {
  const Nanos now = 1'000'000;
  const Nanos deadline = now + 50'000;
  for (int i = 0; i < 3; ++i) {
    const AdmissionDecision a =
        PredictAdmission(now, deadline, 8, 10'000, 2, 1000);
    const AdmissionDecision b =
        PredictAdmission(now, deadline, 8, 10'000, 2, 1000);
    EXPECT_EQ(a.admit, b.admit);
    EXPECT_EQ(a.predicted_completion, b.predicted_completion);
    // 8 × 10 µs across 2 workers + own mean = 50 µs: exactly the budget.
    EXPECT_EQ(a.predicted_completion, deadline);
    EXPECT_TRUE(a.admit);
  }
  // One more queued request tips the prediction past the deadline.
  EXPECT_FALSE(PredictAdmission(now, deadline, 9, 10'000, 2, 1000).admit);
}

TEST(Admission, NeverShedsBlindAndRespectsSafety) {
  // No deadline or no model: always admit.
  EXPECT_TRUE(PredictAdmission(5, 0, 1000, 10'000, 1).admit);
  EXPECT_TRUE(PredictAdmission(5, 10, 1000, 0, 1).admit);
  // Zero workers clamps to one server instead of dividing by zero.
  EXPECT_EQ(PredictAdmission(0, 1'000'000, 4, 10'000, 0).predicted_completion,
            50'000);
  // safety_milli scales the prediction: 2.0 sheds a request 1.0 admits.
  const Nanos now = 0;
  const Nanos deadline = 60'000;
  EXPECT_TRUE(PredictAdmission(now, deadline, 8, 10'000, 2, 1000).admit);
  EXPECT_FALSE(PredictAdmission(now, deadline, 8, 10'000, 2, 2000).admit);
}

// --- Scheduler-level shed decisions ------------------------------------------

SchedulerConfig ShedSchedulerConfig() {
  SchedulerConfig config;
  config.mode = PolicyMode::kCFcfs;  // whole pool serves the type
  config.num_workers = 2;
  config.deadline.targets.push_back({"A", 50 * kMicrosecond, 0});
  config.deadline.shed = true;
  return config;
}

// Fills the queue without dispatching: each admit deepens the backlog until
// the predicted completion crosses the budget, after which every further
// enqueue sheds. The exact flip point and all counters must replay
// identically — the predicate is pure integer arithmetic.
TEST(SchedulerShed, DecisionSequenceIsDeterministic) {
  std::vector<DarcScheduler::EnqueueResult> first;
  for (int run = 0; run < 2; ++run) {
    DarcScheduler scheduler(ShedSchedulerConfig());
    const TypeIndex type =
        scheduler.RegisterType(1, "A", 10 * kMicrosecond, 1.0);
    std::vector<DarcScheduler::EnqueueResult> results;
    for (uint64_t i = 0; i < 20; ++i) {
      Request r;
      r.id = i;
      r.type = type;
      r.arrival = static_cast<Nanos>(i);
      r.deadline = r.arrival + scheduler.DeadlineTargetOf(type);
      results.push_back(scheduler.TryEnqueue(r, r.arrival));
    }
    const uint64_t sheds = static_cast<uint64_t>(
        std::count(results.begin(), results.end(),
                   DarcScheduler::EnqueueResult::kShed));
    EXPECT_GT(sheds, 0u);
    EXPECT_EQ(scheduler.deadline_shed(), sheds);
    EXPECT_EQ(scheduler.deadline_shed_of(type), sheds);
    EXPECT_EQ(scheduler.deadline_stamped(), results.size() - sheds);
    // Once the backlog sheds, deeper backlogs shed too (monotone predicate):
    // the results are a prefix of admits followed by sheds.
    const auto flip = std::find(results.begin(), results.end(),
                                DarcScheduler::EnqueueResult::kShed);
    for (auto it = flip; it != results.end(); ++it) {
      EXPECT_EQ(*it, DarcScheduler::EnqueueResult::kShed);
    }
    if (run == 0) {
      first = results;
    } else {
      EXPECT_EQ(results, first);
    }
  }
}

TEST(SchedulerShed, DrainingTheQueueReopensAdmission) {
  DarcScheduler scheduler(ShedSchedulerConfig());
  const TypeIndex type = scheduler.RegisterType(1, "A", 10 * kMicrosecond, 1.0);
  Nanos now = 0;
  const auto enqueue = [&](uint64_t id) {
    Request r;
    r.id = id;
    r.type = type;
    r.arrival = now;
    r.deadline = now + scheduler.DeadlineTargetOf(type);
    return scheduler.TryEnqueue(r, now);
  };
  uint64_t id = 0;
  while (enqueue(id) == DarcScheduler::EnqueueResult::kOk) {
    ++id;
  }
  // Dispatch and complete one request; the shallower queue admits again.
  auto assignment = scheduler.NextAssignment(now);
  ASSERT_TRUE(assignment.has_value());
  now += 10 * kMicrosecond;
  scheduler.OnCompletion(assignment->worker, type, 10 * kMicrosecond, now,
                         assignment->request.deadline);
  EXPECT_EQ(enqueue(++id), DarcScheduler::EnqueueResult::kOk);
}

// --- Sim-vs-scheduler miss-count consistency ---------------------------------

// Both substrates judge deadlines at server-side completion: the sim's
// Metrics (RecordCompletion at CompleteRequest) and the shared DarcScheduler
// (OnCompletion, the path the threaded runtime's dispatcher drives) must
// therefore agree on every miss, met and shed count. warmup_fraction = 0 so
// the metrics window covers exactly the scheduler's lifetime counters.
TEST(SimConsistency, SchedulerAndMetricsAgreeOnMissAndShedCounts) {
  for (const PolicyMode mode : {PolicyMode::kEdf, PolicyMode::kDarcSlack}) {
    PersephoneOptions options;
    options.scheduler.mode = mode;
    options.scheduler.deadline.targets.push_back({"SHORT", 0, 20.0});
    options.scheduler.deadline.targets.push_back({"LONG", 0, 1.4});
    options.scheduler.deadline.shed = (mode == PolicyMode::kDarcSlack);

    ClusterConfig config;
    config.num_workers = 8;
    config.rate_rps = 0.8 * HighBimodal().PeakLoadRps(8);
    config.duration = 80 * kMillisecond;
    config.warmup_fraction = 0;
    config.seed = 321;
    ClusterEngine engine(HighBimodal(), config,
                         std::make_unique<PersephonePolicy>(options));
    engine.Run();

    const Metrics& m = engine.metrics();
    const DarcScheduler& scheduler =
        static_cast<PersephonePolicy&>(engine.policy()).scheduler();
    EXPECT_GT(m.TotalDeadlined(), 0u);
    EXPECT_EQ(m.TotalDeadlineMisses(), scheduler.deadline_missed());
    EXPECT_EQ(m.TotalDeadlineSheds(), scheduler.deadline_shed());
    // Every admitted deadlined request completed (the engine runs to
    // quiescence), so the stamped count must match the judged count.
    EXPECT_EQ(m.TotalDeadlined(),
              scheduler.deadline_missed() + scheduler.deadline_met());
    EXPECT_EQ(m.TotalDeadlined(), scheduler.deadline_stamped());
    if (mode == PolicyMode::kDarcSlack) {
      EXPECT_GT(m.TotalDeadlineSheds(), 0u);
    }
  }
}

}  // namespace
}  // namespace psp
