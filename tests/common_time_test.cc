// TSC clock and time-unit tests.
#include "src/common/time.h"

#include <gtest/gtest.h>

#include <thread>

namespace psp {
namespace {

TEST(TimeUnits, Conversions) {
  EXPECT_EQ(FromMicros(1.0), 1000);
  EXPECT_EQ(FromMicros(0.5), 500);
  EXPECT_DOUBLE_EQ(ToMicros(2500), 2.5);
  EXPECT_EQ(kSecond, 1000 * kMillisecond);
  EXPECT_EQ(kMillisecond, 1000 * kMicrosecond);
}

TEST(TscClock, MonotonicNow) {
  const TscClock& clock = TscClock::Global();
  Nanos prev = clock.Now();
  for (int i = 0; i < 1000; ++i) {
    const Nanos now = clock.Now();
    EXPECT_GE(now, prev);
    prev = now;
  }
}

TEST(TscClock, TracksWallClockWithinTolerance) {
  const TscClock& clock = TscClock::Global();
  const Nanos t0 = clock.Now();
  const auto wall0 = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  const Nanos elapsed_tsc = clock.Now() - t0;
  const auto elapsed_wall =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - wall0)
          .count();
  // Within 10% of wall time (generous for noisy CI machines).
  EXPECT_NEAR(static_cast<double>(elapsed_tsc),
              static_cast<double>(elapsed_wall),
              0.1 * static_cast<double>(elapsed_wall));
}

TEST(TscClock, CycleConversionsRoundTrip) {
  const TscClock& clock = TscClock::Global();
  EXPECT_GT(clock.cycles_per_sec(), 1e8);  // any real CPU: >100 MHz
  const Nanos ns = 100000;
  const uint64_t cycles = clock.NanosToCycles(ns);
  EXPECT_NEAR(static_cast<double>(clock.CyclesToNanos(cycles)),
              static_cast<double>(ns), 10.0);
}

TEST(TscClock, SpinUntilReachesDeadline) {
  const TscClock& clock = TscClock::Global();
  const Nanos deadline = clock.Now() + 200000;  // 200 µs
  clock.SpinUntil(deadline);
  EXPECT_GE(clock.Now(), deadline);
  // And did not drastically overshoot (scheduler hiccups aside).
  EXPECT_LT(clock.Now(), deadline + 100 * kMillisecond);
}

}  // namespace
}  // namespace psp
