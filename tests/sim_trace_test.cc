// Trace-driven replay tests: CSV parse/serialise round trips, validation,
// and equivalence between replaying a synthesised trace and the live
// generator that produced it.
#include "src/sim/trace.h"

#include <gtest/gtest.h>

#include <sstream>

#include "src/sim/cluster.h"
#include "src/sim/policies/c_fcfs.h"
#include "src/sim/policies/persephone.h"

namespace psp {
namespace {

TEST(TraceCsv, ParsesWellFormedInput) {
  std::istringstream in(
      "# a comment\n"
      "\n"
      "0.5,1,1.0\n"
      "2.25,2,100.0\n"
      "2.25,1,0.5\n");
  const auto trace = ParseTraceCsv(in);
  ASSERT_TRUE(trace.has_value());
  ASSERT_EQ(trace->size(), 3u);
  EXPECT_EQ((*trace)[0].send_time, 500);
  EXPECT_EQ((*trace)[0].wire_type, 1u);
  EXPECT_EQ((*trace)[0].service, 1000);
  EXPECT_EQ((*trace)[1].wire_type, 2u);
  EXPECT_EQ((*trace)[2].send_time, 2250);
}

TEST(TraceCsv, RejectsMalformedLines) {
  std::string error;
  {
    std::istringstream in("not,a,trace\n");
    EXPECT_FALSE(ParseTraceCsv(in, &error).has_value());
  }
  {
    std::istringstream in("1.0,1\n");  // missing field
    EXPECT_FALSE(ParseTraceCsv(in, &error).has_value());
    EXPECT_NE(error.find("line 1"), std::string::npos);
  }
  {
    std::istringstream in("1.0,1,-5\n");  // negative service
    EXPECT_FALSE(ParseTraceCsv(in, &error).has_value());
  }
  {
    std::istringstream in("5.0,1,1.0\n1.0,1,1.0\n");  // time goes backwards
    EXPECT_FALSE(ParseTraceCsv(in, &error).has_value());
    EXPECT_NE(error.find("non-decreasing"), std::string::npos);
  }
}

TEST(TraceCsv, WriteParseRoundTrip) {
  const auto original =
      SynthesizeTrace(HighBimodal(), 50000.0, 20 * kMillisecond, 5);
  ASSERT_GT(original.size(), 500u);
  std::stringstream buffer;
  WriteTraceCsv(original, buffer);
  const auto parsed = ParseTraceCsv(buffer);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), original.size());
  for (size_t i = 0; i < original.size(); i += 97) {
    // CSV stores microseconds with double precision: ns-exact round trip.
    EXPECT_EQ((*parsed)[i].send_time, original[i].send_time);
    EXPECT_EQ((*parsed)[i].wire_type, original[i].wire_type);
    EXPECT_EQ((*parsed)[i].service, original[i].service);
  }
}

TEST(TraceCsv, MissingFileReportsError) {
  std::string error;
  EXPECT_FALSE(ParseTraceCsvFile("/nonexistent/trace.csv", &error).has_value());
  EXPECT_NE(error.find("cannot open"), std::string::npos);
}

TEST(TraceReplay, SynthesizedTraceMatchesWorkloadMix) {
  const auto trace =
      SynthesizeTrace(ExtremeBimodal(), 1e6, 100 * kMillisecond, 7);
  uint64_t longs = 0;
  for (const auto& e : trace) {
    if (e.wire_type == 2) {
      ++longs;
      EXPECT_EQ(e.service, FromMicros(500.0));
    }
  }
  EXPECT_NEAR(static_cast<double>(longs) / static_cast<double>(trace.size()),
              0.005, 0.002);
  // Arrival rate ≈ 1 Mrps.
  EXPECT_NEAR(static_cast<double>(trace.size()), 100000.0, 3000.0);
}

TEST(TraceReplay, EngineReplaysTraceExactly) {
  const WorkloadSpec workload = HighBimodal();
  const auto trace =
      SynthesizeTrace(workload, 100000.0, 50 * kMillisecond, 11);

  ClusterConfig config;
  config.num_workers = 14;
  config.net_one_way = 0;
  config.dispatch_cost = 0;
  config.completion_cost = 0;
  config.warmup_fraction = 0;

  ClusterEngine engine(workload, config,
                       std::make_unique<CentralFcfsPolicy>(), trace);
  engine.Run();
  // Every trace entry was injected and completed.
  EXPECT_EQ(engine.generated(), trace.size());
  EXPECT_EQ(engine.metrics().TotalCount(), trace.size());
  EXPECT_EQ(engine.metrics().TotalDrops(), 0u);
}

TEST(TraceReplay, DarcWorksOnTraces) {
  const WorkloadSpec workload = HighBimodal();
  const double rate = 0.8 * workload.PeakLoadRps(14);
  const auto trace = SynthesizeTrace(workload, rate, 100 * kMillisecond, 13);

  ClusterConfig config;
  config.num_workers = 14;
  config.net_one_way = 0;
  config.dispatch_cost = 0;
  config.completion_cost = 0;
  config.warmup_fraction = 0.1;

  PersephoneOptions options;
  options.scheduler.mode = PolicyMode::kDarc;
  ClusterEngine darc(workload, config,
                     std::make_unique<PersephonePolicy>(options), trace);
  darc.Run();
  ClusterEngine fifo(workload, config, std::make_unique<CentralFcfsPolicy>(),
                     trace);
  fifo.Run();
  // The paper's result holds on replayed traces too.
  EXPECT_LT(darc.metrics().TypeLatency(1, 99.9),
            fifo.metrics().TypeLatency(1, 99.9));
}

TEST(TraceReplay, ReplayIsDeterministic) {
  const WorkloadSpec workload = ExtremeBimodal();
  const auto trace = SynthesizeTrace(workload, 1e6, 30 * kMillisecond, 17);
  ClusterConfig config;
  config.num_workers = 8;
  config.warmup_fraction = 0;
  const auto run = [&] {
    ClusterEngine engine(workload, config,
                         std::make_unique<CentralFcfsPolicy>(), trace);
    engine.Run();
    return engine.metrics().OverallLatency(99.9);
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace psp
