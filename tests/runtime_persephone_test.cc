// Threaded-runtime integration tests: real dispatcher + worker threads over
// the lock-free channels and simulated NIC, driven by the in-process load
// generator. Kept small so they run quickly on single-core machines.
#include "src/runtime/persephone.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "src/apps/kvstore.h"
#include "src/apps/synthetic.h"
#include "src/net/packet.h"
#include "src/runtime/loadgen.h"

namespace psp {
namespace {

RuntimeConfig SmallRuntime(PolicyMode mode = PolicyMode::kDarc) {
  RuntimeConfig config;
  config.num_workers = 2;
  config.scheduler.mode = mode;
  config.pool_buffers = 1024;
  return config;
}

TEST(Runtime, EchoesSyntheticRequestsEndToEnd) {
  Persephone server(SmallRuntime());
  server.RegisterType(1, "SHORT", MakeSpinHandler(), FromMicros(2), 0.9);
  server.RegisterType(2, "LONG", MakeSpinHandler(), FromMicros(50), 0.1);
  server.Start();

  LoadGenConfig lg;
  lg.rate_rps = 3000;
  lg.total_requests = 1500;
  LoadGenerator gen(&server,
                    {MakeSpinSpec(1, "SHORT", 0.9, FromMicros(2)),
                     MakeSpinSpec(2, "LONG", 0.1, FromMicros(50))},
                    lg);
  const LoadGenReport report = gen.Run();
  server.Stop();

  EXPECT_EQ(report.sent, 1500u);
  // Everything sent must come back (no drops at this trivial load).
  const TelemetrySnapshot snap = server.telemetry_snapshot();
  EXPECT_EQ(report.received + report.send_drops +
                snap.counter("scheduler.dropped"),
            report.sent);
  EXPECT_GT(report.overall.Count(), 0u);
  // Client-observed latency must be at least the service time.
  EXPECT_GE(report.latency.at(2).Min(), FromMicros(45));
  EXPECT_EQ(snap.counter("runtime.malformed"), 0u);
}

TEST(Runtime, DarcActivatesWithSeededProfiles) {
  Persephone server(SmallRuntime());
  server.RegisterType(1, "A", MakeSpinHandler(), FromMicros(1), 0.5);
  server.RegisterType(2, "B", MakeSpinHandler(), FromMicros(100), 0.5);
  server.Start();
  EXPECT_TRUE(server.scheduler().darc_active());
  server.Stop();
}

TEST(Runtime, UnknownTypesHitUnknownHandler) {
  Persephone server(SmallRuntime());
  server.RegisterType(1, "KNOWN", MakeSpinHandler(), FromMicros(1), 1.0);
  std::atomic<int> unknown_hits{0};
  server.set_unknown_handler(
      [&unknown_hits](const std::byte*, uint32_t, std::byte*, uint32_t) {
        ++unknown_hits;
        return 0u;
      });
  server.Start();

  // Send a request whose wire type (77) is not registered.
  LoadGenConfig lg;
  lg.rate_rps = 2000;
  lg.total_requests = 50;
  LoadGenerator gen(&server, {MakeSpinSpec(77, "MYSTERY", 1.0, 0)}, lg);
  const LoadGenReport report = gen.Run();
  server.Stop();
  EXPECT_EQ(report.received, 50u);
  EXPECT_EQ(unknown_hits.load(), 50);
}

TEST(Runtime, MalformedFramesAreCountedAndDropped) {
  Persephone server(SmallRuntime());
  server.RegisterType(1, "T", MakeSpinHandler(), FromMicros(1), 1.0);
  server.Start();

  // Deliver garbage directly to the NIC RX queue.
  std::byte* buf = server.pool().AllocGlobal();
  std::memset(buf, 0xAB, 64);
  ASSERT_TRUE(server.nic().DeliverToQueue(0, PacketRef{buf, 64}));
  // Wait for the dispatcher to chew on it.
  const TscClock& clock = TscClock::Global();
  const Nanos deadline = clock.Now() + 200 * kMillisecond;
  Counter& malformed =
      server.telemetry().registry().GetCounter("runtime.malformed");
  while (malformed.Value() == 0 && clock.Now() < deadline) {
    std::this_thread::yield();
  }
  server.Stop();
  EXPECT_EQ(malformed.Value(), 1u);
  // The buffer went back to the pool: nothing leaked.
  EXPECT_EQ(server.pool().AvailableApprox(), server.pool().num_buffers());
}

TEST(Runtime, KvStoreServiceEndToEnd) {
  Persephone server(SmallRuntime());
  auto store = std::make_shared<KvStore>();
  LoadKvDataset(*store, 500, 32);

  const auto kv_handler = [store](const std::byte* payload, uint32_t length,
                                  std::byte* response,
                                  uint32_t capacity) -> uint32_t {
    const auto request = DecodeKvRequest(payload, length);
    if (!request.has_value()) {
      return 0;
    }
    return ExecuteKvRequest(*store, *request, response, capacity);
  };
  server.RegisterType(1, "GET", kv_handler, FromMicros(2), 0.5);
  server.RegisterType(2, "SCAN", kv_handler, FromMicros(200), 0.5);
  server.Start();

  ClientRequestSpec get_spec;
  get_spec.wire_id = 1;
  get_spec.name = "GET";
  get_spec.ratio = 0.5;
  get_spec.build_payload = [](std::byte* payload, uint32_t capacity,
                              Rng& rng) {
    KvRequest r;
    r.op = KvOp::kGet;
    r.key = rng.NextBounded(500);
    return EncodeKvRequest(r, payload, capacity);
  };
  ClientRequestSpec scan_spec;
  scan_spec.wire_id = 2;
  scan_spec.name = "SCAN";
  scan_spec.ratio = 0.5;
  scan_spec.build_payload = [](std::byte* payload, uint32_t capacity,
                               Rng& rng) {
    KvRequest r;
    r.op = KvOp::kScan;
    r.key = rng.NextBounded(100);
    r.count = 200;
    return EncodeKvRequest(r, payload, capacity);
  };

  LoadGenConfig lg;
  lg.rate_rps = 2000;
  lg.total_requests = 400;
  LoadGenerator gen(&server, {get_spec, scan_spec}, lg);
  const LoadGenReport report = gen.Run();
  server.Stop();

  EXPECT_EQ(report.received, 400u);
  EXPECT_GT(report.latency.at(1).Count(), 0u);
  EXPECT_GT(report.latency.at(2).Count(), 0u);
}

TEST(Runtime, StopIsIdempotentAndRestartable) {
  Persephone server(SmallRuntime());
  server.RegisterType(1, "T", MakeSpinHandler(), FromMicros(1), 1.0);
  server.Start();
  EXPECT_TRUE(server.running());
  server.Stop();
  EXPECT_FALSE(server.running());
  server.Stop();  // no-op
  server.Start();
  EXPECT_TRUE(server.running());
  server.Stop();
}

TEST(Runtime, ProfilerObservesRealServiceTimes) {
  Persephone server(SmallRuntime());
  server.RegisterType(1, "SPIN20", MakeSpinHandler(), FromMicros(20), 1.0);
  server.Start();

  LoadGenConfig lg;
  lg.rate_rps = 2000;
  lg.total_requests = 300;
  LoadGenerator gen(&server, {MakeSpinSpec(1, "SPIN20", 1.0, FromMicros(20))},
                    lg);
  gen.Run();
  server.Stop();

  // The dispatcher profiled ~20 µs service times from worker completions.
  const TypeIndex t = server.scheduler().ResolveType(1);
  const Nanos mean = server.scheduler().profiler().MeanServiceTime(t);
  EXPECT_GT(mean, FromMicros(15));
  EXPECT_LT(mean, FromMicros(200));  // generous: single-core CI machines
}


TEST(Runtime, DedicatedNetWorkerPath) {
  RuntimeConfig config = SmallRuntime();
  config.ingress.dedicated_net_worker = true;
  Persephone server(config);
  server.RegisterType(1, "T", MakeSpinHandler(), FromMicros(2), 1.0);
  server.Start();

  LoadGenConfig lg;
  lg.rate_rps = 2000;
  lg.total_requests = 300;
  LoadGenerator gen(&server, {MakeSpinSpec(1, "T", 1.0, FromMicros(2))}, lg);
  const LoadGenReport report = gen.Run();
  server.Stop();
  EXPECT_EQ(report.received, 300u);
  EXPECT_EQ(server.telemetry_snapshot().counter("runtime.malformed"), 0u);

  // Garbage frames are rejected by the net worker's L2 checks.
  RuntimeConfig config2 = SmallRuntime();
  config2.ingress.dedicated_net_worker = true;
  Persephone server2(config2);
  server2.RegisterType(1, "T", MakeSpinHandler(), FromMicros(2), 1.0);
  server2.Start();
  std::byte* buf = server2.pool().AllocGlobal();
  std::memset(buf, 0xCD, 64);
  ASSERT_TRUE(server2.nic().DeliverToQueue(0, PacketRef{buf, 64}));
  const TscClock& clock = TscClock::Global();
  const Nanos deadline = clock.Now() + 200 * kMillisecond;
  Counter& malformed2 =
      server2.telemetry().registry().GetCounter("runtime.malformed");
  while (malformed2.Value() == 0 && clock.Now() < deadline) {
    std::this_thread::yield();
  }
  server2.Stop();
  EXPECT_EQ(malformed2.Value(), 1u);
}


TEST(Runtime, WorkerUtilizationAccumulates) {
  Persephone server(SmallRuntime());
  server.RegisterType(1, "SPIN", MakeSpinHandler(), FromMicros(10), 1.0);
  server.Start();

  LoadGenConfig lg;
  lg.rate_rps = 2000;
  lg.total_requests = 200;
  LoadGenerator gen(&server, {MakeSpinSpec(1, "SPIN", 1.0, FromMicros(10))},
                    lg);
  gen.Run();

  uint64_t total_requests = 0;
  Nanos total_busy = 0;
  for (uint32_t w = 0; w < server.num_workers(); ++w) {
    const WorkerUtilization u = server.worker_utilization(w);
    total_requests += u.requests;
    total_busy += u.busy;
    EXPECT_GT(u.wall, 0);
    EXPECT_LE(u.BusyFraction(), 1.5);  // sanity (clock noise allowed)
  }
  server.Stop();
  EXPECT_EQ(total_requests, 200u);
  // 200 requests x ~10 us of spinning.
  EXPECT_GT(total_busy, 200 * FromMicros(8));
  EXPECT_EQ(server.worker_utilization(99).wall, 0);  // out of range
}

TEST(Runtime, TelemetryTracesDecomposeEndToEndLatency) {
  RuntimeConfig config = SmallRuntime();
  config.telemetry.sample_every = 1;  // trace every request
  Persephone server(config);
  server.RegisterType(1, "SPIN", MakeSpinHandler(), FromMicros(5), 1.0);
  server.Start();

  LoadGenConfig lg;
  lg.rate_rps = 2000;
  lg.total_requests = 200;
  LoadGenerator gen(&server, {MakeSpinSpec(1, "SPIN", 1.0, FromMicros(5))},
                    lg);
  gen.Run();
  // Stop() drains in-flight completions, so the snapshot and the scheduler
  // accessors below observe the same final counts.
  server.Stop();
  const TelemetrySnapshot snap = server.telemetry_snapshot();

  ASSERT_FALSE(snap.traces.empty());
  for (const RequestTrace& t : snap.traces) {
    // Stamps appear in lifecycle order (same TSC domain on this machine).
    for (size_t s = 1; s < kNumTraceStages; ++s) {
      EXPECT_LE(t.stamp[s - 1], t.stamp[s]) << "stage " << s;
    }
    // The five consecutive stage spans decompose rx→tx exactly.
    const Nanos parts = t.Span(TraceStage::kRx, TraceStage::kEnqueued) +
                        t.Span(TraceStage::kEnqueued, TraceStage::kDispatched) +
                        t.Span(TraceStage::kDispatched,
                               TraceStage::kHandlerStart) +
                        t.Span(TraceStage::kHandlerStart,
                               TraceStage::kHandlerEnd) +
                        t.Span(TraceStage::kHandlerEnd, TraceStage::kTx);
    EXPECT_EQ(parts, t.Span(TraceStage::kRx, TraceStage::kTx));
    // The handler spun for ~5 µs.
    EXPECT_GE(t.Span(TraceStage::kHandlerStart, TraceStage::kHandlerEnd),
              FromMicros(4));
  }

  // One surface: snapshot counters agree with the scheduler's dedicated
  // accessors (the single source of truth for completed/dropped).
  EXPECT_EQ(snap.counter("scheduler.completed"), server.scheduler().completed());
  EXPECT_EQ(snap.counter("scheduler.dropped"), server.scheduler().dropped());
  EXPECT_EQ(server.scheduler().completed(), 200u);
  EXPECT_EQ(snap.counter("runtime.rx_packets"), 200u);
  // Per-type naming flows through for the stage report.
  const auto breakdown = snap.StageBreakdown();
  ASSERT_FALSE(breakdown.empty());
  EXPECT_FALSE(snap.StageReport().empty());
}

TEST(Runtime, TelemetrySamplingThinsTraces) {
  RuntimeConfig config = SmallRuntime();
  config.telemetry.sample_every = 50;
  Persephone server(config);
  server.RegisterType(1, "T", MakeSpinHandler(), FromMicros(1), 1.0);
  server.Start();

  LoadGenConfig lg;
  lg.rate_rps = 4000;
  lg.total_requests = 500;
  LoadGenerator gen(&server, {MakeSpinSpec(1, "T", 1.0, FromMicros(1))}, lg);
  gen.Run();
  const TelemetrySnapshot snap = server.telemetry_snapshot();
  server.Stop();

  // 500 requests at 1-in-50 → ~10 traces; allow slack for dispatcher
  // batching but require real thinning.
  EXPECT_GE(snap.counter("telemetry.traces_recorded"), 5u);
  EXPECT_LE(snap.counter("telemetry.traces_recorded"), 30u);
}

TEST(Runtime, TimeSeriesRecorderAndSloOnLiveRuntime) {
  // The continuous layer on the threaded runtime: the sampler thread closes
  // intervals while the dispatcher records, the gauge hook stamps worker
  // busy fractions, and an (intentionally unmeetable) SLO trips the flight
  // recorder. This is also the TSan coverage for the sampler interleaving
  // (scripts/check.sh thread).
  const std::string flight = "/tmp/psp_runtime_flight_test.json";
  std::remove(flight.c_str());

  RuntimeConfig config = SmallRuntime();
  config.telemetry.timeseries.enabled = true;
  config.telemetry.timeseries.interval = 50 * kMillisecond;
  // slowdown 1.0x is unmeetable (sojourn > service always): every
  // completion violates, so the burn-rate alert fires deterministically.
  config.telemetry.slo.targets.push_back(SloTarget{"SHORT", 1.0, 0.01});
  config.telemetry.slo.flight_path = flight;
  Persephone server(config);
  server.RegisterType(1, "SHORT", MakeSpinHandler(), FromMicros(2), 0.9);
  server.RegisterType(2, "LONG", MakeSpinHandler(), FromMicros(50), 0.1);
  server.Start();

  LoadGenConfig lg;
  lg.rate_rps = 3000;
  lg.total_requests = 1500;
  LoadGenerator gen(&server,
                    {MakeSpinSpec(1, "SHORT", 0.9, FromMicros(2)),
                     MakeSpinSpec(2, "LONG", 0.1, FromMicros(50))},
                    lg);
  const LoadGenReport report = gen.Run();
  server.Stop();  // drains, then flushes the partial interval

  const TelemetrySnapshot snap = server.telemetry_snapshot();
  ASSERT_FALSE(snap.timeseries.empty());

  // Interval deltas must reconcile exactly with the run totals: arrivals
  // count offered load at dispatcher ingest, completions what came back.
  uint64_t arrivals = 0;
  uint64_t completions = 0;
  bool saw_busy = false;
  for (const IntervalRecord& rec : snap.timeseries) {
    for (const TypeIntervalStats& t : rec.types) {
      arrivals += t.arrivals;
      completions += t.completions;
      EXPECT_GE(t.queue_depth, 0);       // gauge hook attached
      EXPECT_GE(t.reserved_workers, 0);  // seeded DARC: shares published
    }
    for (const int64_t permille : rec.worker_busy_permille) {
      EXPECT_GE(permille, 0);
      EXPECT_LE(permille, 1000);
      saw_busy = true;
    }
  }
  EXPECT_EQ(arrivals, report.sent - report.send_drops);
  EXPECT_EQ(completions, snap.counter("scheduler.completed"));
  EXPECT_TRUE(saw_busy);

  // The unmeetable SLO fired and the flight record reached disk with the
  // alert + interval history.
  ASSERT_NE(server.telemetry().slo(), nullptr);
  EXPECT_GE(server.telemetry().slo()->alerts_total(), 1u);
  std::ifstream in(flight);
  ASSERT_TRUE(in.good()) << "flight record was not written";
  std::stringstream contents;
  contents << in.rdbuf();
  EXPECT_NE(contents.str().find("\"alerts\""), std::string::npos);
  EXPECT_NE(contents.str().find("SHORT"), std::string::npos);
  std::remove(flight.c_str());
}

}  // namespace
}  // namespace psp
