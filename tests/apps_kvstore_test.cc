// KV store semantics: versions, tombstones, runs, scans, compaction, codec.
#include "src/apps/kvstore.h"

#include <gtest/gtest.h>

#include <cstring>
#include <map>

#include "src/common/rng.h"

namespace psp {
namespace {

TEST(KvStore, PutGetRoundTrip) {
  KvStore store;
  store.Put(1, "one");
  store.Put(2, "two");
  EXPECT_EQ(store.Get(1), "one");
  EXPECT_EQ(store.Get(2), "two");
  EXPECT_FALSE(store.Get(3).has_value());
}

TEST(KvStore, OverwriteTakesLatestValue) {
  KvStore store(4);  // small memtable: forces runs
  store.Put(1, "v1");
  store.Put(2, "a");
  store.Put(3, "b");
  store.Put(4, "c");  // freeze
  EXPECT_GE(store.num_runs(), 1u);
  store.Put(1, "v2");
  EXPECT_EQ(store.Get(1), "v2");
}

TEST(KvStore, DeleteTombstonesAcrossRuns) {
  KvStore store(2);
  store.Put(1, "x");
  store.Put(2, "y");  // freeze -> run contains 1,2
  store.Delete(1);
  store.Put(3, "z");  // freeze -> run contains tombstone(1), 3
  EXPECT_FALSE(store.Get(1).has_value());
  EXPECT_EQ(store.Get(2), "y");
  EXPECT_EQ(store.Get(3), "z");
}

TEST(KvStore, ScanReturnsSortedLiveEntries) {
  KvStore store(3);
  for (uint64_t k = 0; k < 10; ++k) {
    store.Put(k, "v" + std::to_string(k));
  }
  store.Delete(5);
  std::vector<std::pair<uint64_t, std::string>> out;
  const size_t n = store.Scan(2, 5, &out);
  EXPECT_EQ(n, 5u);
  ASSERT_EQ(out.size(), 5u);
  // Keys 2,3,4,6,7 (5 deleted).
  EXPECT_EQ(out[0].first, 2u);
  EXPECT_EQ(out[2].first, 4u);
  EXPECT_EQ(out[3].first, 6u);
  for (size_t i = 1; i < out.size(); ++i) {
    EXPECT_GT(out[i].first, out[i - 1].first);
  }
}

TEST(KvStore, ScanSeesNewestVersion) {
  KvStore store(2);
  store.Put(7, "old");
  store.Put(8, "x");  // freeze
  store.Put(7, "new");
  std::vector<std::pair<uint64_t, std::string>> out;
  store.Scan(7, 1, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].second, "new");
}

TEST(KvStore, ScanPastEndStops) {
  KvStore store;
  store.Put(1, "a");
  EXPECT_EQ(store.Scan(100, 10), 0u);
  EXPECT_EQ(store.Scan(0, 10), 1u);
}

TEST(KvStore, CompactMergesRunsAndDropsTombstones) {
  KvStore store(2);
  for (uint64_t k = 0; k < 20; ++k) {
    store.Put(k, "v");
  }
  store.Delete(0);
  store.Delete(19);
  store.Compact();
  EXPECT_EQ(store.num_runs(), 1u);
  EXPECT_EQ(store.memtable_size(), 0u);
  EXPECT_EQ(store.ApproxEntries(), 18u);
  EXPECT_FALSE(store.Get(0).has_value());
  EXPECT_EQ(store.Get(10), "v");
}

TEST(KvStore, LoadDatasetMatchesPaperSetup) {
  KvStore store;
  LoadKvDataset(store, 5000, 64);  // "SCAN requests over 5000 keys"
  EXPECT_EQ(store.ApproxEntries(), 5000u);
  EXPECT_EQ(store.num_runs(), 1u);
  EXPECT_EQ(store.Scan(0, 5000), 5000u);
}

TEST(KvStore, RandomizedAgainstReferenceMap) {
  KvStore store(16);
  std::map<uint64_t, std::string> reference;
  Rng rng(99);
  for (int i = 0; i < 5000; ++i) {
    const uint64_t key = rng.NextBounded(200);
    const int action = static_cast<int>(rng.NextBounded(3));
    if (action < 2) {
      const std::string value = "v" + std::to_string(i);
      store.Put(key, value);
      reference[key] = value;
    } else {
      store.Delete(key);
      reference.erase(key);
    }
  }
  for (uint64_t key = 0; key < 200; ++key) {
    const auto it = reference.find(key);
    const auto got = store.Get(key);
    if (it == reference.end()) {
      EXPECT_FALSE(got.has_value()) << key;
    } else {
      ASSERT_TRUE(got.has_value()) << key;
      EXPECT_EQ(*got, it->second);
    }
  }
  // Full scan equals the reference's live size.
  EXPECT_EQ(store.Scan(0, SIZE_MAX), reference.size());
}

// --- Codec + execution ---------------------------------------------------------

TEST(KvCodec, GetRoundTrip) {
  std::byte buf[64];
  KvRequest request;
  request.op = KvOp::kGet;
  request.key = 42;
  const uint32_t len = EncodeKvRequest(request, buf, sizeof(buf));
  ASSERT_GT(len, 0u);
  const auto decoded = DecodeKvRequest(buf, len);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->op, KvOp::kGet);
  EXPECT_EQ(decoded->key, 42u);
}

TEST(KvCodec, PutCarriesValueBytes) {
  std::byte buf[128];
  const char value[] = "payload-bytes";
  KvRequest request;
  request.op = KvOp::kPut;
  request.key = 7;
  request.value = reinterpret_cast<const std::byte*>(value);
  request.value_length = sizeof(value);
  const uint32_t len = EncodeKvRequest(request, buf, sizeof(buf));
  const auto decoded = DecodeKvRequest(buf, len);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->value_length, sizeof(value));
  EXPECT_EQ(std::memcmp(decoded->value, value, sizeof(value)), 0);
}

TEST(KvCodec, RejectsTruncatedAndBogus) {
  std::byte buf[64];
  KvRequest request;
  request.op = KvOp::kScan;
  request.key = 1;
  request.count = 10;
  const uint32_t len = EncodeKvRequest(request, buf, sizeof(buf));
  EXPECT_FALSE(DecodeKvRequest(buf, len - 1).has_value());
  buf[0] = std::byte{99};  // invalid op
  EXPECT_FALSE(DecodeKvRequest(buf, len).has_value());
}

TEST(KvExecute, GetPutScanAgainstStore) {
  KvStore store;
  std::byte req[128];
  std::byte resp[256];

  KvRequest put;
  put.op = KvOp::kPut;
  put.key = 5;
  const char value[] = "hello";
  put.value = reinterpret_cast<const std::byte*>(value);
  put.value_length = 5;
  EncodeKvRequest(put, req, sizeof(req));
  EXPECT_EQ(ExecuteKvRequest(store, put, resp, sizeof(resp)), 1u);

  KvRequest get;
  get.op = KvOp::kGet;
  get.key = 5;
  const uint32_t get_len = ExecuteKvRequest(store, get, resp, sizeof(resp));
  EXPECT_EQ(get_len, 1u + 4u + 5u);
  EXPECT_EQ(static_cast<uint8_t>(resp[0]), 1);  // found

  get.key = 999;
  const uint32_t miss_len = ExecuteKvRequest(store, get, resp, sizeof(resp));
  EXPECT_EQ(miss_len, 5u);
  EXPECT_EQ(static_cast<uint8_t>(resp[0]), 0);  // not found

  KvRequest scan;
  scan.op = KvOp::kScan;
  scan.key = 0;
  scan.count = 100;
  const uint32_t scan_len = ExecuteKvRequest(store, scan, resp, sizeof(resp));
  EXPECT_EQ(scan_len, 12u);
  uint32_t visited;
  std::memcpy(&visited, resp, 4);
  EXPECT_EQ(visited, 1u);
}


TEST(KvStore, TieredCompactionBoundsRunCount) {
  KvStore store(/*memtable_limit=*/8, /*max_runs=*/4);
  for (uint64_t k = 0; k < 400; ++k) {
    store.Put(k, "v" + std::to_string(k));
  }
  EXPECT_LE(store.num_runs(), 5u);  // bound is enforced after each freeze
  // All data still visible.
  for (uint64_t k = 0; k < 400; k += 37) {
    ASSERT_TRUE(store.Get(k).has_value()) << k;
    EXPECT_EQ(*store.Get(k), "v" + std::to_string(k));
  }
  EXPECT_EQ(store.Scan(0, SIZE_MAX), 400u);
}

TEST(KvStore, CompactionPreservesNewestVersionAndTombstones) {
  KvStore store(/*memtable_limit=*/4, /*max_runs=*/2);
  for (int round = 0; round < 30; ++round) {
    store.Put(1, "v" + std::to_string(round));
    store.Put(static_cast<uint64_t>(100 + round), "x");
    store.Delete(2);
    store.Put(2 + 1000u + static_cast<uint64_t>(round), "y");
  }
  EXPECT_EQ(*store.Get(1), "v29");
  EXPECT_FALSE(store.Get(2).has_value());
}

TEST(KvStore, BloomFiltersSkipRunsOnMisses) {
  KvStore store(/*memtable_limit=*/64, /*max_runs=*/16);
  for (uint64_t k = 0; k < 1000; ++k) {
    store.Put(k, "v");
  }
  ASSERT_GT(store.num_runs(), 3u);
  const uint64_t before = store.bloom_skips();
  for (uint64_t k = 0; k < 500; ++k) {
    EXPECT_FALSE(store.Get(1000000 + k * 13).has_value());
  }
  // Misses should skip nearly every run via the filters.
  EXPECT_GT(store.bloom_skips() - before, 500u * (store.num_runs() - 1));
}

TEST(KvStore, RandomizedWithAggressiveCompaction) {
  KvStore store(/*memtable_limit=*/8, /*max_runs=*/3);
  std::map<uint64_t, std::string> reference;
  Rng rng(123);
  for (int i = 0; i < 8000; ++i) {
    const uint64_t key = rng.NextBounded(300);
    if (rng.NextBounded(3) < 2) {
      const std::string value = "v" + std::to_string(i);
      store.Put(key, value);
      reference[key] = value;
    } else {
      store.Delete(key);
      reference.erase(key);
    }
  }
  for (uint64_t key = 0; key < 300; ++key) {
    const auto it = reference.find(key);
    const auto got = store.Get(key);
    if (it == reference.end()) {
      EXPECT_FALSE(got.has_value()) << key;
    } else {
      ASSERT_TRUE(got.has_value()) << key;
      EXPECT_EQ(*got, it->second) << key;
    }
  }
  EXPECT_EQ(store.Scan(0, SIZE_MAX), reference.size());
  EXPECT_LE(store.num_runs(), 4u);
}

}  // namespace
}  // namespace psp
