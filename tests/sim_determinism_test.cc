// Reproducibility guarantees: identical seeds give bit-identical experiment
// results; the core scheduler's c-FCFS mode is timing-equivalent to the
// standalone central-queue policy.
#include <gtest/gtest.h>

#include <memory>

#include "src/sim/cluster.h"
#include "src/sim/policies/c_fcfs.h"
#include "src/sim/policies/persephone.h"

namespace psp {
namespace {

ClusterConfig Config(uint64_t seed,
                     EngineBackend backend = EngineBackend::kAuto) {
  ClusterConfig c;
  c.num_workers = 8;
  c.rate_rps = 0.75 * HighBimodal().PeakLoadRps(8);
  c.duration = 120 * kMillisecond;
  c.net_one_way = 5 * kMicrosecond;
  c.dispatch_cost = 100;
  c.completion_cost = 40;
  c.seed = seed;
  c.engine_backend = backend;
  return c;
}

struct Summary {
  uint64_t count;
  uint64_t events;
  Nanos p50;
  Nanos p999;
  double slowdown;
  Nanos long_p999;
};

Summary RunExperiment(uint64_t seed, std::unique_ptr<SchedulingPolicy> policy) {
  ClusterEngine engine(HighBimodal(), Config(seed), std::move(policy));
  engine.Run();
  return Summary{engine.metrics().TotalCount(),
                 engine.sim().executed_events(),
                 engine.metrics().OverallLatency(50.0),
                 engine.metrics().OverallLatency(99.9),
                 engine.metrics().OverallSlowdown(99.9),
                 engine.metrics().TypeLatency(2, 99.9)};
}

TEST(Determinism, SameSeedSameResults) {
  PersephoneOptions options;
  options.scheduler.mode = PolicyMode::kDarc;
  const Summary a = RunExperiment(123, std::make_unique<PersephonePolicy>(options));
  const Summary b = RunExperiment(123, std::make_unique<PersephonePolicy>(options));
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.p50, b.p50);
  EXPECT_EQ(a.p999, b.p999);
  EXPECT_EQ(a.slowdown, b.slowdown);
  EXPECT_EQ(a.long_p999, b.long_p999);
}

TEST(Determinism, PerTypeTailSlowdownsBitIdenticalAcrossRuns) {
  // The allocation-free engine orders events by (time, global schedule seq) —
  // the same total order as the seed implementation — so two seeded runs must
  // agree on every derived metric down to the last bit, per type. Doubles are
  // compared for exact equality on purpose: any change to event ordering,
  // arena reuse or heap arity that perturbs execution order shows up here.
  PersephoneOptions options;
  options.scheduler.mode = PolicyMode::kDarc;
  for (const uint64_t seed : {7u, 123u, 99991u}) {
    ClusterEngine a(HighBimodal(), Config(seed),
                    std::make_unique<PersephonePolicy>(options));
    a.Run();
    ClusterEngine b(HighBimodal(), Config(seed),
                    std::make_unique<PersephonePolicy>(options));
    b.Run();
    ASSERT_EQ(a.sim().executed_events(), b.sim().executed_events());
    for (const TypeId type : {TypeId{1}, TypeId{2}}) {
      ASSERT_EQ(a.metrics().TypeCount(type), b.metrics().TypeCount(type))
          << "seed " << seed << " type " << type;
      const double sa = a.metrics().TypeSlowdown(type, 99.9);
      const double sb = b.metrics().TypeSlowdown(type, 99.9);
      ASSERT_EQ(sa, sb) << "seed " << seed << " type " << type;
      ASSERT_GT(sa, 0.0);
      ASSERT_EQ(a.metrics().TypeLatency(type, 99.9),
                b.metrics().TypeLatency(type, 99.9))
          << "seed " << seed << " type " << type;
    }
  }
}

TEST(Determinism, TailMetricsBitIdenticalAcrossEventQueueBackends) {
  // The timer wheel and the 4-ary heap implement the same (time, schedule
  // seq) total order, so a full experiment pinned to each backend — and one
  // left on auto selection — must agree on every derived metric bit for bit.
  // This is the per-type p99.9 replay golden run against both backends.
  PersephoneOptions options;
  options.scheduler.mode = PolicyMode::kDarc;
  for (const uint64_t seed : {7u, 123u}) {
    ClusterEngine heap(HighBimodal(), Config(seed, EngineBackend::kHeap),
                       std::make_unique<PersephonePolicy>(options));
    heap.Run();
    ClusterEngine wheel(HighBimodal(), Config(seed, EngineBackend::kWheel),
                        std::make_unique<PersephonePolicy>(options));
    wheel.Run();
    ClusterEngine autosel(HighBimodal(), Config(seed, EngineBackend::kAuto),
                          std::make_unique<PersephonePolicy>(options));
    autosel.Run();
    EXPECT_FALSE(heap.sim().wheel_active());
    EXPECT_TRUE(wheel.sim().wheel_active());
    ASSERT_EQ(heap.sim().executed_events(), wheel.sim().executed_events())
        << "seed " << seed;
    ASSERT_EQ(heap.sim().executed_events(), autosel.sim().executed_events())
        << "seed " << seed;
    for (const TypeId type : {TypeId{1}, TypeId{2}}) {
      ASSERT_EQ(heap.metrics().TypeCount(type), wheel.metrics().TypeCount(type))
          << "seed " << seed << " type " << type;
      ASSERT_EQ(heap.metrics().TypeLatency(type, 99.9),
                wheel.metrics().TypeLatency(type, 99.9))
          << "seed " << seed << " type " << type;
      ASSERT_EQ(heap.metrics().TypeLatency(type, 99.9),
                autosel.metrics().TypeLatency(type, 99.9))
          << "seed " << seed << " type " << type;
      ASSERT_EQ(heap.metrics().TypeSlowdown(type, 99.9),
                wheel.metrics().TypeSlowdown(type, 99.9))
          << "seed " << seed << " type " << type;
    }
  }
}

TEST(Determinism, EdfDeadlineRunsBitIdenticalAcrossRuns) {
  // The deadline tier must not perturb replay determinism: EDF dispatch
  // (bucketed FFS queue with FIFO tie-breaks), deadline stamping (integer
  // budget arithmetic) and admission shedding (pure predicate) are all
  // virtual-time-only, so two seeded runs agree on every metric — including
  // the new miss/shed counts — down to the last bit.
  PersephoneOptions options;
  options.scheduler.mode = PolicyMode::kEdf;
  options.scheduler.deadline.targets.push_back({"SHORT", 0, 20.0});
  options.scheduler.deadline.targets.push_back({"LONG", 0, 1.5});
  options.scheduler.deadline.shed = true;
  for (const uint64_t seed : {7u, 123u}) {
    ClusterEngine a(HighBimodal(), Config(seed),
                    std::make_unique<PersephonePolicy>(options));
    a.Run();
    ClusterEngine b(HighBimodal(), Config(seed),
                    std::make_unique<PersephonePolicy>(options));
    b.Run();
    ASSERT_EQ(a.sim().executed_events(), b.sim().executed_events())
        << "seed " << seed;
    ASSERT_GT(a.metrics().TotalDeadlined(), 0u);
    ASSERT_EQ(a.metrics().TotalDeadlined(), b.metrics().TotalDeadlined());
    ASSERT_EQ(a.metrics().TotalDeadlineMisses(),
              b.metrics().TotalDeadlineMisses());
    ASSERT_EQ(a.metrics().TotalDeadlineSheds(),
              b.metrics().TotalDeadlineSheds());
    ASSERT_EQ(a.metrics().DeadlineMissRate(), b.metrics().DeadlineMissRate());
    for (const TypeId type : {TypeId{1}, TypeId{2}}) {
      ASSERT_EQ(a.metrics().TypeCount(type), b.metrics().TypeCount(type))
          << "seed " << seed << " type " << type;
      ASSERT_EQ(a.metrics().TypeLatency(type, 99.9),
                b.metrics().TypeLatency(type, 99.9))
          << "seed " << seed << " type " << type;
      ASSERT_EQ(a.metrics().TypeDeadlineMisses(type),
                b.metrics().TypeDeadlineMisses(type))
          << "seed " << seed << " type " << type;
    }
  }
}

TEST(Determinism, DifferentSeedDifferentArrivals) {
  const Summary a = RunExperiment(1, std::make_unique<CentralFcfsPolicy>());
  const Summary b = RunExperiment(2, std::make_unique<CentralFcfsPolicy>());
  // Same load, different sample paths: medians stay close, exact tails and
  // event counts differ.
  EXPECT_NE(a.events, b.events);
}

TEST(Determinism, PersephoneCFcfsModeEquivalentToCentralQueue) {
  // The DarcScheduler's c-FCFS mode (global-oldest-head over typed queues)
  // must produce the same timing behaviour as the standalone central FIFO:
  // worker *identity* differs but every dispatch instant is identical.
  PersephoneOptions options;
  options.scheduler.mode = PolicyMode::kCFcfs;
  const Summary psp_mode =
      RunExperiment(77, std::make_unique<PersephonePolicy>(options));
  const Summary central = RunExperiment(77, std::make_unique<CentralFcfsPolicy>());
  EXPECT_EQ(psp_mode.count, central.count);
  EXPECT_EQ(psp_mode.p50, central.p50);
  EXPECT_EQ(psp_mode.p999, central.p999);
  EXPECT_EQ(psp_mode.long_p999, central.long_p999);
}

}  // namespace
}  // namespace psp
