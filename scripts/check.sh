#!/usr/bin/env bash
# Sanitizer gate. Modes:
#   address (default) - Debug build with PSP_SANITIZE=address (ASan + UBSan),
#                       full test suite.
#   thread            - Debug build with PSP_SANITIZE=thread (TSan), run over
#                       the concurrency-bearing tests: the threaded runtime
#                       (dispatcher + workers + the telemetry sampler thread),
#                       channels, rings, NIC and the telemetry subsystem.
#   all               - both.
# Usage: scripts/check.sh [address|thread|all] [build-dir]
set -eu
MODE=${1:-address}
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

run_address() {
  local build=${1:-build-asan}
  cmake -B "$build" -S . \
    -DCMAKE_BUILD_TYPE=Debug \
    -DPSP_SANITIZE=address
  cmake --build "$build" -j "$(nproc)"
  # halt_on_error keeps UBSan findings fatal so ctest reports them as failures.
  UBSAN_OPTIONS=halt_on_error=1:print_stacktrace=1 \
  ASAN_OPTIONS=detect_leaks=1 \
    ctest --test-dir "$build" --output-on-failure -j "$(nproc)"
}

run_thread() {
  local build=${1:-build-tsan}
  cmake -B "$build" -S . \
    -DCMAKE_BUILD_TYPE=Debug \
    -DPSP_SANITIZE=thread
  cmake --build "$build" -j "$(nproc)"
  # The threaded-runtime tests exercise every cross-thread surface: SPSC
  # channels, the NIC rings, worker completion signalling, and the
  # time-series sampler thread closing intervals while the dispatcher
  # records. Single-threaded sim/bench tests add nothing under TSan.
  TSAN_OPTIONS=halt_on_error=1 \
    ctest --test-dir "$build" --output-on-failure -j "$(nproc)" \
      -R 'runtime_|telemetry_|common_rings_|net_nic_|common_memory_pool_'
}

case "$MODE" in
  address) run_address "${2:-build-asan}" ;;
  thread)  run_thread "${2:-build-tsan}" ;;
  all)     run_address build-asan; run_thread build-tsan ;;
  *) echo "usage: scripts/check.sh [address|thread|all] [build-dir]" >&2
     exit 2 ;;
esac
