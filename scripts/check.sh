#!/usr/bin/env bash
# Sanitizer + benchmark gate. Modes:
#   address (default) - Debug build with PSP_SANITIZE=address (ASan + UBSan),
#                       full test suite.
#   thread            - Debug build with PSP_SANITIZE=thread (TSan), run over
#                       the concurrency-bearing tests: the threaded runtime
#                       (dispatcher + workers + the telemetry sampler thread),
#                       channels, rings, NIC and the telemetry subsystem.
#   bench             - tier-2: benchmark trajectory harness in smoke mode
#                       (scripts/bench_report.sh --smoke): schema and
#                       zero-allocation gates are fatal, speedup gates are
#                       advisory at smoke windows.
#   all               - all of the above.
# Usage: scripts/check.sh [address|thread|bench|all] [build-dir]
set -eu
MODE=${1:-address}
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

run_address() {
  local build=${1:-build-asan}
  cmake -B "$build" -S . \
    -DCMAKE_BUILD_TYPE=Debug \
    -DPSP_SANITIZE=address
  cmake --build "$build" -j "$(nproc)"
  # halt_on_error keeps UBSan findings fatal so ctest reports them as failures.
  UBSAN_OPTIONS=halt_on_error=1:print_stacktrace=1 \
  ASAN_OPTIONS=detect_leaks=1 \
    ctest --test-dir "$build" --output-on-failure -j "$(nproc)"
}

run_thread() {
  local build=${1:-build-tsan}
  cmake -B "$build" -S . \
    -DCMAKE_BUILD_TYPE=Debug \
    -DPSP_SANITIZE=thread
  cmake --build "$build" -j "$(nproc)"
  # The threaded-runtime tests exercise every cross-thread surface: SPSC
  # channels, the NIC rings, worker completion signalling, and the
  # time-series sampler thread closing intervals while the dispatcher
  # records. Single-threaded sim/bench tests add nothing under TSan.
  TSAN_OPTIONS=halt_on_error=1 \
    ctest --test-dir "$build" --output-on-failure -j "$(nproc)" \
      -R 'runtime_|telemetry_|common_rings_|net_nic_|common_memory_pool_'
}

run_bench() {
  local build=${1:-build-bench}
  # Smoke windows: short enough for CI, still runs every gate. The report
  # lands in the build tree, not the repo root (the committed BENCH_PR3.json
  # comes from a full run).
  scripts/bench_report.sh --smoke "$build" "$build/BENCH_SMOKE.json"
}

case "$MODE" in
  address) run_address "${2:-build-asan}" ;;
  thread)  run_thread "${2:-build-tsan}" ;;
  bench)   run_bench "${2:-build-bench}" ;;
  all)     run_address build-asan; run_thread build-tsan; run_bench build-bench ;;
  *) echo "usage: scripts/check.sh [address|thread|bench|all] [build-dir]" >&2
     exit 2 ;;
esac
