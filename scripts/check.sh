#!/usr/bin/env bash
# Sanitizer + benchmark gate. Modes:
#   address (default) - Debug build with PSP_SANITIZE=address (ASan + UBSan),
#                       full test suite.
#   thread            - Debug build with PSP_SANITIZE=thread (TSan), run over
#                       the concurrency-bearing tests: the threaded runtime
#                       (dispatcher + workers + the telemetry sampler thread),
#                       channels, rings, NIC and the telemetry subsystem.
#   bench             - tier-2: benchmark trajectory harness in smoke mode
#                       (scripts/bench_report.sh --smoke): schema and
#                       zero-allocation gates (including the timer-wheel
#                       cascade-stress path) are fatal, speedup gates —
#                       3x at 256-4096 plus the 16384 floor — are advisory
#                       at smoke windows. Every stage prints its wall-clock
#                       seconds so the fleet-sweep speedup is visible in CI.
#   introspect        - admin-plane smoke: launch the quickstart with the
#                       endpoint enabled, scrape /metrics via pspctl --check
#                       (malformed exposition is a hard failure) and validate
#                       /snapshot.json + /outliers.json with python3. Also run
#                       automatically inside the address and thread modes so
#                       the live scrape path executes under both sanitizers.
#   fleet             - fleet determinism smoke: run the multi-server sim
#                       (examples/fleet_demo) twice with the same seed and
#                       require byte-identical fleet.json artifacts, then a
#                       different seed and require divergence — on BOTH event
#                       queue backends (--engine heap and --engine wheel);
#                       finally require the two backends to agree on every
#                       fleet.json field except the backend's own
#                       fleet.sim.engine.* instrumentation.
#   ingress           - socket-ingress smoke: a real two-process exchange over
#                       loopback — examples/udp_server on an ephemeral port
#                       driven by the external tools/psp_loadgen; responses
#                       must come back and the server's books must balance.
#   profile           - sampling-profiler smoke: udp_server with the admin
#                       plane on and psp_loadgen driving it, one-shot
#                       `pspctl profile` capture (start -> wait -> stop ->
#                       folded), then validate the folded stacks: grammar
#                       (`role;state:...;frames count` lines), ledger-state
#                       tags on >= 99% of samples, and a 409 on double-start.
#   trace             - distributed-tracing smoke: udp_server with the admin
#                       plane on, psp_loadgen sampling 1-in-64 on the wire,
#                       psp_tracejoin fetching /lifecycle.json live and
#                       joining both halves into a Perfetto trace (validated
#                       with python3), pspctl checkfile on the loadgen's
#                       --prom page, and a two-server pspctl federate merge
#                       validated by --check.
#   deadline          - deadline-tier smoke: wire-stamped budgets end to end
#                       in two real processes — psp_loadgen stamps per-type
#                       budgets (--deadline-us) into the PSP header, the
#                       EDF-mode udp_server turns them into absolute
#                       deadlines at ingress, the loadgen's own client-side
#                       miss accounting must appear in its --json report and
#                       the live /metrics page must expose well-formed
#                       psp_deadline_* families with a nonzero stamped count.
#   all               - all of the above.
# Usage: scripts/check.sh [address|thread|bench|introspect|fleet|ingress|trace|profile|deadline|all] [build-dir]
set -eu
MODE=${1:-address}
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

# Admin-plane smoke against an already-configured build tree: start the
# quickstart with the endpoint on, scrape it like an external Prometheus +
# operator would, and fail on malformed output. Inherits whatever sanitizer
# the tree was configured with, so ASan/TSan runs cover the live scrape path.
run_introspect() {
  local build=${1:-build}
  cmake -B "$build" -S . >/dev/null
  cmake --build "$build" -j "$(nproc)" --target quickstart pspctl
  local log="$build/introspect_smoke.log"
  PSP_ADMIN=1 PSP_ADMIN_SERVE_MS=8000 \
    "$build/examples/quickstart" >"$log" 2>&1 &
  local pid=$!
  local port=""
  for _ in $(seq 1 100); do
    port=$(sed -n 's/^admin: listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
      "$log" | head -1)
    [ -n "$port" ] && break
    sleep 0.1
  done
  if [ -z "$port" ]; then
    echo "introspect smoke: quickstart never announced its admin port" >&2
    cat "$log" >&2
    kill "$pid" 2>/dev/null || true
    return 1
  fi
  local rc=0
  # --check parses the exposition and exits 4 on any malformed line.
  "$build/tools/pspctl" --port "$port" --check \
    --out "$build/introspect_smoke.prom" metrics || rc=$?
  if [ "$rc" = 0 ]; then
    "$build/tools/pspctl" --port "$port" snapshot \
      | python3 -m json.tool >/dev/null || rc=$?
  fi
  if [ "$rc" = 0 ]; then
    "$build/tools/pspctl" --port "$port" outliers \
      | python3 -m json.tool >/dev/null || rc=$?
  fi
  if [ "$rc" = 0 ]; then
    "$build/tools/pspctl" --port "$port" health >/dev/null || rc=$?
  fi
  # The quickstart exits on its own when the serve window closes; its exit
  # code surfaces sanitizer findings hit while serving the scrapes.
  wait "$pid" || rc=$?
  if [ "$rc" != 0 ]; then
    echo "introspect smoke FAILED (rc=$rc); server log:" >&2
    cat "$log" >&2
    return 1
  fi
  echo "introspect smoke OK (port $port)"
}

run_address() {
  local build=${1:-build-asan}
  cmake -B "$build" -S . \
    -DCMAKE_BUILD_TYPE=Debug \
    -DPSP_SANITIZE=address
  cmake --build "$build" -j "$(nproc)"
  # halt_on_error keeps UBSan findings fatal so ctest reports them as failures.
  UBSAN_OPTIONS=halt_on_error=1:print_stacktrace=1 \
  ASAN_OPTIONS=detect_leaks=1 \
    ctest --test-dir "$build" --output-on-failure -j "$(nproc)"
  ASAN_OPTIONS=detect_leaks=1 run_introspect "$build"
}

run_thread() {
  local build=${1:-build-tsan}
  cmake -B "$build" -S . \
    -DCMAKE_BUILD_TYPE=Debug \
    -DPSP_SANITIZE=thread
  cmake --build "$build" -j "$(nproc)"
  # The threaded-runtime tests exercise every cross-thread surface: SPSC
  # channels, the NIC rings, worker completion signalling, and the
  # time-series sampler thread closing intervals while the dispatcher
  # records. Single-threaded sim/bench tests add nothing under TSan.
  TSAN_OPTIONS=halt_on_error=1 \
    ctest --test-dir "$build" --output-on-failure -j "$(nproc)" \
      -R 'runtime_|telemetry_|introspect_|common_rings_|net_nic_|common_memory_pool_'
  TSAN_OPTIONS=halt_on_error=1 run_introspect "$build"
}

# Fleet determinism smoke: the whole multi-server simulation — N server
# pipelines off one event queue, per-server RNG streams split from the fleet
# seed, policy decisions, telemetry aggregation — must replay bit-identically
# for a seed. Two same-seed runs are compared byte-for-byte on fleet.json;
# a third run with another seed must diverge (guards against the artifact
# not actually depending on the run). The whole golden runs against both
# event-queue backends, and the two backends must agree on every field
# except their own fleet.sim.engine.* instrumentation (the cross-backend
# ordering-contract check at fleet scale).
run_fleet() {
  local build=${1:-build}
  cmake -B "$build" -S . >/dev/null
  cmake --build "$build" -j "$(nproc)" --target fleet_demo
  local work="$build/fleet_smoke"
  rm -rf "$work"
  mkdir -p "$work"
  local flags="--servers 3 --policy shortest-q --duration-ms 20 --load 0.7"
  local engine
  for engine in heap wheel; do
    # shellcheck disable=SC2086
    "$build/examples/fleet_demo" $flags --engine "$engine" --seed 42 \
      --out "$work/$engine-a" >/dev/null
    # shellcheck disable=SC2086
    "$build/examples/fleet_demo" $flags --engine "$engine" --seed 42 \
      --out "$work/$engine-b" >/dev/null
    # shellcheck disable=SC2086
    "$build/examples/fleet_demo" $flags --engine "$engine" --seed 43 \
      --out "$work/$engine-c" >/dev/null
    if ! cmp -s "$work/$engine-a/fleet.json" "$work/$engine-b/fleet.json"; then
      echo "fleet smoke FAILED: same-seed runs differ on fleet.json" \
           "(--engine $engine)" >&2
      diff "$work/$engine-a/fleet.json" "$work/$engine-b/fleet.json" \
        | head -5 >&2 || true
      return 1
    fi
    if cmp -s "$work/$engine-a/fleet.json" "$work/$engine-c/fleet.json"; then
      echo "fleet smoke FAILED: different seeds produced identical" \
           "fleet.json (--engine $engine)" >&2
      return 1
    fi
    python3 -m json.tool "$work/$engine-a/fleet.json" >/dev/null
  done
  # Cross-backend: identical except the backend's own counters.
  python3 - "$work/heap-a/fleet.json" "$work/wheel-a/fleet.json" <<'PY'
import json, sys

def strip(node):
    if isinstance(node, dict):
        return {k: strip(v) for k, v in node.items()
                if "sim.engine." not in k}
    if isinstance(node, list):
        return [strip(v) for v in node]
    return node

with open(sys.argv[1]) as f:
    heap = strip(json.load(f))
with open(sys.argv[2]) as f:
    wheel = strip(json.load(f))
if heap != wheel:
    sys.exit("fleet smoke FAILED: heap and wheel backends disagree on "
             "fleet.json beyond sim.engine.* instrumentation")
PY
  echo "fleet smoke OK (both backends: same-seed byte-identical, seeds" \
       "diverge, heap == wheel modulo engine counters)"
}

# Socket-ingress smoke: the kernel-UDP frontend as an operator would run it —
# server and load generator in separate processes, datagrams over real
# loopback sockets. Parses the announced ephemeral port off the server log,
# requires the loadgen to see responses, and requires the server's shutdown
# books to show completed requests. Inherits the build tree's sanitizer
# flags, like run_introspect.
run_ingress() {
  local build=${1:-build}
  cmake -B "$build" -S . >/dev/null
  cmake --build "$build" -j "$(nproc)" --target udp_server psp_loadgen
  local log="$build/ingress_smoke.log"
  "$build/examples/udp_server" --port 0 --serve-ms 8000 >"$log" 2>&1 &
  local pid=$!
  local port=""
  for _ in $(seq 1 100); do
    port=$(sed -n 's/^udp: listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
      "$log" | head -1)
    [ -n "$port" ] && break
    sleep 0.1
  done
  if [ -z "$port" ]; then
    echo "ingress smoke: udp_server never announced its port" >&2
    cat "$log" >&2
    kill "$pid" 2>/dev/null || true
    return 1
  fi
  local rc=0
  "$build/tools/psp_loadgen" --port "$port" --rate 2000 --requests 500 \
    --json >"$build/ingress_smoke.json" || rc=$?
  if [ "$rc" = 0 ]; then
    python3 - "$build/ingress_smoke.json" <<'PY' || rc=$?
import json, sys
with open(sys.argv[1]) as f:
    report = json.load(f)
if report["received"] <= 0:
    sys.exit(f"loadgen got no responses: {report}")
print(f"  loadgen: {report['received']}/{report['sent']} responses, "
      f"overall p99 {report['overall']['p99_us']:.0f}us")
PY
  fi
  # The server exits on its own when the serve window closes; its exit code
  # surfaces sanitizer findings hit while serving the datagrams.
  wait "$pid" || rc=$?
  if [ "$rc" != 0 ]; then
    echo "ingress smoke FAILED (rc=$rc); server log:" >&2
    cat "$log" >&2
    return 1
  fi
  local completed
  completed=$(sed -n 's/^completed \([0-9]*\) requests.*/\1/p' "$log" | head -1)
  if [ -z "$completed" ] || [ "$completed" = 0 ]; then
    echo "ingress smoke FAILED: server completed no requests; log:" >&2
    cat "$log" >&2
    return 1
  fi
  echo "ingress smoke OK (port $port, server completed $completed requests)"
}

# Sampling-profiler smoke: the operator workflow end to end in real
# processes — a loaded udp_server, `pspctl profile` driving the admin
# routes, folded stacks back out. Validates the folded grammar, requires
# ledger-state tags to partition >= 99% of samples (the time-provenance
# attribution the profiler exists for), and checks that a second start
# while a capture runs is refused with an HTTP error (409).
run_profile() {
  local build=${1:-build}
  cmake -B "$build" -S . >/dev/null
  cmake --build "$build" -j "$(nproc)" --target udp_server psp_loadgen pspctl
  local work="$build/profile_smoke"
  rm -rf "$work"
  mkdir -p "$work"
  local log="$work/server.log"
  PSP_ADMIN=1 "$build/examples/udp_server" --port 0 --serve-ms 12000 \
    >"$log" 2>&1 &
  local pid=$!
  local udp_port="" admin_port=""
  for _ in $(seq 1 100); do
    udp_port=$(sed -n 's/^udp: listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
      "$log" | head -1)
    admin_port=$(sed -n 's/^admin: listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
      "$log" | head -1)
    [ -n "$udp_port" ] && [ -n "$admin_port" ] && break
    sleep 0.1
  done
  if [ -z "$udp_port" ] || [ -z "$admin_port" ]; then
    echo "profile smoke: udp_server never announced its ports" >&2
    cat "$log" >&2
    kill "$pid" 2>/dev/null || true
    return 1
  fi
  local rc=0
  # Load in the background so the capture sees busy workers, not just polls.
  "$build/tools/psp_loadgen" --port "$udp_port" --rate 4000 --requests 16000 \
    >"$work/loadgen.out" 2>&1 &
  local load_pid=$!
  # One-shot capture: start at 199 Hz, 2 s window, stop, fetch folded.
  "$build/tools/pspctl" --port "$admin_port" --out "$work/profile.folded" \
    profile 199 2 || rc=$?
  # 409 leg: arm a fresh capture, then a second start must be refused
  # (pspctl maps HTTP >= 400 to exit 3); stop cleans up.
  if [ "$rc" = 0 ]; then
    "$build/tools/pspctl" --port "$admin_port" profile start 99 \
      >/dev/null || rc=$?
  fi
  if [ "$rc" = 0 ]; then
    local rc2=0
    "$build/tools/pspctl" --port "$admin_port" profile start 99 \
      >/dev/null 2>&1 || rc2=$?
    if [ "$rc2" != 3 ]; then
      echo "profile smoke: double-start was not refused (rc=$rc2)" >&2
      rc=1
    fi
    "$build/tools/pspctl" --port "$admin_port" profile stop >/dev/null || rc=$?
  fi
  if [ "$rc" = 0 ]; then
    python3 - "$work/profile.folded" <<'PY' || rc=$?
import sys
total = tagged = 0
lines = 0
with open(sys.argv[1]) as f:
    for line in f:
        line = line.rstrip("\n")
        if not line:
            continue
        lines += 1
        key, _, count = line.rpartition(" ")
        if not key or not count.isdigit():
            sys.exit(f"malformed folded line: {line!r}")
        role = key.split(";", 1)[0]
        if role not in ("worker", "dispatcher", "net", "sampler"):
            sys.exit(f"unknown role {role!r} in: {line!r}")
        total += int(count)
        if ";state:" in key:
            tagged += int(count)
if lines == 0 or total == 0:
    sys.exit("folded profile is empty (no samples captured)")
if tagged * 100 < total * 99:
    sys.exit(f"ledger-state tags cover only {tagged}/{total} samples "
             "(need >= 99%)")
print(f"  profile: {total} samples across {lines} stacks, "
      f"{tagged * 100.0 / total:.1f}% state-tagged")
PY
  fi
  wait "$load_pid" || true
  wait "$pid" || rc=$?
  if [ "$rc" != 0 ]; then
    echo "profile smoke FAILED (rc=$rc); server log:" >&2
    cat "$log" >&2
    return 1
  fi
  echo "profile smoke OK (udp $udp_port, admin $admin_port)"
}

# Distributed-tracing smoke: the full cross-process story in real processes.
# One udp_server with the admin plane on; psp_loadgen stamps 1-in-64 requests
# with the wire sampling bit; psp_tracejoin fetches the server's sampled
# lifecycle records over the live admin endpoint and joins the two clock
# domains into one Perfetto trace covering client-queue → wire → all seven
# server stages. A second server then joins for the federation leg: pspctl
# federate merges both /metrics pages and --check gates the merged page.
run_trace() {
  local build=${1:-build}
  cmake -B "$build" -S . >/dev/null
  cmake --build "$build" -j "$(nproc)" \
    --target udp_server psp_loadgen psp_tracejoin pspctl
  local work="$build/trace_smoke"
  rm -rf "$work"
  mkdir -p "$work"

  local log_a="$work/server_a.log" log_b="$work/server_b.log"
  PSP_ADMIN=1 "$build/examples/udp_server" --port 0 --serve-ms 10000 \
    >"$log_a" 2>&1 &
  local pid_a=$!
  PSP_ADMIN=1 "$build/examples/udp_server" --port 0 --serve-ms 10000 \
    >"$log_b" 2>&1 &
  local pid_b=$!

  local udp_port="" admin_a="" admin_b=""
  for _ in $(seq 1 100); do
    udp_port=$(sed -n 's/^udp: listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
      "$log_a" | head -1)
    admin_a=$(sed -n 's/^admin: listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
      "$log_a" | head -1)
    admin_b=$(sed -n 's/^admin: listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
      "$log_b" | head -1)
    [ -n "$udp_port" ] && [ -n "$admin_a" ] && [ -n "$admin_b" ] && break
    sleep 0.1
  done
  if [ -z "$udp_port" ] || [ -z "$admin_a" ] || [ -z "$admin_b" ]; then
    echo "trace smoke: servers never announced their ports" >&2
    cat "$log_a" "$log_b" >&2
    kill "$pid_a" "$pid_b" 2>/dev/null || true
    return 1
  fi

  local rc=0
  # Client half: 1-in-64 wire sampling, JSON report + Prometheus page.
  "$build/tools/psp_loadgen" --port "$udp_port" --rate 2000 --requests 1000 \
    --sample 64 --json --prom "$work/client.prom" \
    >"$work/client.json" || rc=$?
  # The network-time exposition page must be well-formed Prometheus text.
  if [ "$rc" = 0 ]; then
    "$build/tools/pspctl" checkfile "$work/client.prom" || rc=$?
  fi
  # Join against the live admin endpoint (exit 0 requires joined spans).
  if [ "$rc" = 0 ]; then
    "$build/tools/psp_tracejoin" --client "$work/client.json" \
      --admin "127.0.0.1:$admin_a" --out "$work/trace.json" || rc=$?
  fi
  if [ "$rc" = 0 ]; then
    python3 - "$work/trace.json" <<'PY' || rc=$?
import json, sys
with open(sys.argv[1]) as f:
    trace = json.load(f)
events = trace["traceEvents"]
if not events:
    sys.exit("joined trace has no events")
names = {e.get("name") for e in events}
phases = {e.get("ph") for e in events}
for need in ("client-queue", "wire-out", "wire-back", "classify", "enqueue",
             "queue", "handoff", "service", "reply"):
    if need not in names:
        sys.exit(f"joined trace lacks {need!r} slices: {sorted(names)}")
if not {"b", "e"} <= phases:
    sys.exit(f"joined trace lacks async span pairs: {sorted(phases)}")
spans = sum(1 for e in events if e.get("ph") == "b")
print(f"  tracejoin: {spans} sampled spans, {len(events)} events")
PY
  fi
  # Federation leg: merge both live servers, gate the merged page.
  if [ "$rc" = 0 ]; then
    "$build/tools/pspctl" --check --out "$work/federated.prom" \
      federate "127.0.0.1:$admin_a" "127.0.0.1:$admin_b" || rc=$?
  fi
  if [ "$rc" = 0 ]; then
    grep -q 'psp_fleet_servers 2' "$work/federated.prom" || {
      echo "trace smoke: federated page lacks psp_fleet_servers 2" >&2
      rc=1
    }
    grep -q 'server="1"' "$work/federated.prom" || {
      echo "trace smoke: federated page lacks server=\"1\" samples" >&2
      rc=1
    }
  fi
  wait "$pid_a" || rc=$?
  wait "$pid_b" || rc=$?
  if [ "$rc" != 0 ]; then
    echo "trace smoke FAILED (rc=$rc); server logs:" >&2
    cat "$log_a" "$log_b" >&2
    return 1
  fi
  echo "trace smoke OK (udp $udp_port, admin $admin_a + $admin_b federated)"
}

# Deadline-tier smoke: the wire-deadline story as an operator would run it —
# the load generator stamps per-type latency budgets into the PSP header
# (--deadline-us), the server (EDF dispatch) turns them into absolute
# deadlines at ingress and judges them at completion. Three checks: the
# loadgen's client-side miss accounting shows checked deadlines in --json,
# pspctl --check gates the live exposition, and the scraped page must carry
# the psp_deadline_* families with a nonzero stamped count.
run_deadline() {
  local build=${1:-build}
  cmake -B "$build" -S . >/dev/null
  cmake --build "$build" -j "$(nproc)" --target udp_server psp_loadgen pspctl
  local work="$build/deadline_smoke"
  rm -rf "$work"
  mkdir -p "$work"
  local log="$work/server.log"
  PSP_ADMIN=1 "$build/examples/udp_server" --port 0 --policy edf \
    --serve-ms 8000 >"$log" 2>&1 &
  local pid=$!
  local udp_port="" admin_port=""
  for _ in $(seq 1 100); do
    udp_port=$(sed -n 's/^udp: listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
      "$log" | head -1)
    admin_port=$(sed -n 's/^admin: listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
      "$log" | head -1)
    [ -n "$udp_port" ] && [ -n "$admin_port" ] && break
    sleep 0.1
  done
  if [ -z "$udp_port" ] || [ -z "$admin_port" ]; then
    echo "deadline smoke: udp_server never announced its ports" >&2
    cat "$log" >&2
    kill "$pid" 2>/dev/null || true
    return 1
  fi
  local rc=0
  # Budgets chosen so SHORT (5 µs spin) comfortably meets 150 µs while LONG
  # (200 µs spin) can realistically miss 600 µs under queueing — both sides
  # of the miss accounting get exercised without the smoke depending on it.
  "$build/tools/psp_loadgen" --port "$udp_port" --rate 2000 --requests 500 \
    --deadline-us SHORT:150 --deadline-us LONG:600 \
    --json >"$work/loadgen.json" || rc=$?
  if [ "$rc" = 0 ]; then
    python3 - "$work/loadgen.json" <<'PY' || rc=$?
import json, sys
with open(sys.argv[1]) as f:
    report = json.load(f)
if report["received"] <= 0:
    sys.exit(f"loadgen got no responses: {report}")
checked = missed = 0
for t in report["types"]:
    if t.get("deadline_us", 0) > 0:
        if t.get("deadline_checked", 0) <= 0:
            sys.exit(f"type {t['name']} has a budget but checked no "
                     f"deadlines: {t}")
        checked += t["deadline_checked"]
        missed += t.get("deadline_missed", 0)
if checked <= 0:
    sys.exit("loadgen report carries no client-side deadline accounting")
print(f"  loadgen: {report['received']}/{report['sent']} responses, "
      f"{checked} deadlines checked, {missed} missed client-side")
PY
  fi
  # Live scrape while the server still serves: exposition must parse
  # (--check) and carry the deadline families with real activity.
  if [ "$rc" = 0 ]; then
    "$build/tools/pspctl" --port "$admin_port" --check \
      --out "$work/metrics.prom" metrics || rc=$?
  fi
  if [ "$rc" = 0 ]; then
    python3 - "$work/metrics.prom" <<'PY' || rc=$?
import sys
stamped = 0.0
families = set()
with open(sys.argv[1]) as f:
    for line in f:
        if line.startswith("#") or not line.strip():
            continue
        name = line.split("{")[0].split(" ")[0]
        if "deadline" in name:
            families.add(name)
        if line.startswith("psp_deadline_stamped_total "):
            stamped = float(line.rsplit(" ", 1)[1])
if stamped <= 0:
    sys.exit(f"/metrics shows no stamped deadlines "
             f"(deadline families seen: {sorted(families)})")
for need in ("psp_deadline_type_missed_total",
             "psp_deadline_type_slack_ns_count"):
    if need not in families:
        sys.exit(f"/metrics lacks {need}; saw {sorted(families)}")
print(f"  metrics: {stamped:.0f} deadlines stamped server-side, "
      f"{len(families)} deadline families")
PY
  fi
  wait "$pid" || rc=$?
  if [ "$rc" != 0 ]; then
    echo "deadline smoke FAILED (rc=$rc); server log:" >&2
    cat "$log" >&2
    return 1
  fi
  echo "deadline smoke OK (udp $udp_port, admin $admin_port)"
}

run_bench() {
  local build=${1:-build-bench}
  # Smoke windows: short enough for CI, still runs every gate. The report
  # lands in the build tree, not the repo root (the committed BENCH_PR3.json
  # comes from a full run).
  scripts/bench_report.sh --smoke "$build" "$build/BENCH_SMOKE.json"
}

case "$MODE" in
  address) run_address "${2:-build-asan}" ;;
  thread)  run_thread "${2:-build-tsan}" ;;
  bench)   run_bench "${2:-build-bench}" ;;
  introspect) run_introspect "${2:-build}" ;;
  fleet)   run_fleet "${2:-build}" ;;
  ingress) run_ingress "${2:-build}" ;;
  profile) run_profile "${2:-build}" ;;
  trace)   run_trace "${2:-build}" ;;
  deadline) run_deadline "${2:-build}" ;;
  all)     run_address build-asan; run_thread build-tsan; run_fleet build;
           run_ingress build; run_profile build; run_trace build;
           run_deadline build; run_bench build-bench ;;
  *) echo "usage: scripts/check.sh [address|thread|bench|introspect|fleet|ingress|trace|profile|deadline|all] [build-dir]" >&2
     exit 2 ;;
esac
