#!/usr/bin/env bash
# Sanitizer gate: configures a Debug build with PSP_SANITIZE=ON (ASan +
# UBSan), builds everything, and runs the test suite under the sanitizers.
# Usage: scripts/check.sh [build-dir]   (default: build-asan)
set -eu
BUILD=${1:-build-asan}
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

cmake -B "$BUILD" -S . \
  -DCMAKE_BUILD_TYPE=Debug \
  -DPSP_SANITIZE=ON
cmake --build "$BUILD" -j "$(nproc)"

# halt_on_error keeps UBSan findings fatal so ctest reports them as failures.
UBSAN_OPTIONS=halt_on_error=1:print_stacktrace=1 \
ASAN_OPTIONS=detect_leaks=1 \
  ctest --test-dir "$BUILD" --output-on-failure -j "$(nproc)"
