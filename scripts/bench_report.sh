#!/usr/bin/env bash
# Benchmark trajectory harness: runs the engine/channel microbenchmarks, a
# fig03 smoke sweep, the fleet inter-server policy sweep and the deadline-tier
# policy sweep, merges everything into one machine-readable report (default
# BENCH_PR10.json) and validates it. The report header records the host (core count, CPU model,
# frequency governor) so numbers from different machines are never compared
# blind. Each stage prints its wall-clock seconds so sweep-level speedups
# (e.g. the fleet stage on the timer-wheel event core) are visible directly
# in CI output.
#
# Gates:
#   * report schema (always): required sections/keys present, non-empty sweep;
#   * zero steady-state allocations per event in the sim engine, on both the
#     churn and the cascade-stress (timer-wheel worst case) paths (always);
#   * >= 3x paired speedup over the legacy std::function engine at every
#     gated pending-event population — 256/512/1024 (what real paper
#     experiments keep in flight) AND the 4096 stress point, which the
#     hierarchical timer wheel now clears (the old 4-ary-heap-only engine
#     collapsed to ~1.5x there; it carried a 1.2x floor until PR 8). The
#     16384 point keeps a lower floor: at ~2.8 MB of combined working set the
#     interleaved measurement is memory-bound for both engines. The paired
#     benchmark interleaves engine and legacy rounds so the shared-box clock
#     wander cancels in the ratio; see bench/micro_sim_engine.cc and
#     docs/PERF.md for the methodology. The report also records which backend
#     the auto heuristic selected per batch (engine.backend_selected_*).
#   * scrape-under-load: a 10 Hz GET /metrics scraper against the live admin
#     plane must keep the client-observed p99 within 5% of baseline
#     (bench/micro_introspect.cc); failed scrapes are always fatal, the 5%
#     budget is fatal in full mode and advisory in smoke.
#   * fleet policy ordering: power-of-two-choices must not lose to random on
#     fleet p99.9 slowdown at 70% load for any (workload, servers) point
#     (bench/fig_fleet_policies.cc, paired on one arrival trace); fatal in
#     full mode, advisory in smoke.
#   * deadline policy ordering: EDF dispatch must not lose to c-FCFS on
#     deadline-miss-rate at 70% load on the High Bimodal workload — the
#     deadline tier's reason to exist is that deadline-aware dispatch beats
#     deadline-blind dispatch (bench/fig_deadline.cc, same seed and testbed
#     for every policy); fatal in full mode, advisory in smoke.
#   * profiler-under-load: 99 Hz CPU-time stack sampling on every runtime
#     thread must keep the client-observed p99.9 within 5% of baseline —
#     noise-adjusted by the bench's own calibration (the spread across its
#     interleaved idle rounds bounds what the host can resolve;
#     see bench/micro_profiler.cc);
#     zero samples collected is always fatal, the budget is fatal in full
#     mode and advisory in smoke.
#   * ingress frontends: the kernel-UDP-socket path's p99.9 must stay within
#     a bounded factor of the in-process ring baseline (absolute floor
#     included — syscall cost dominates tiny baselines), adaptive
#     polling must burn less idle net-worker CPU than busy polling, and
#     1-in-64 wire trace sampling must regress the yield path's p99.9 by
#     less than 5% (bench/micro_ingress.cc); failed rounds are always
#     fatal, the gates are fatal in full mode and advisory in smoke. The
#     trace-overhead gate is additionally advisory when the bench reports
#     trace_overhead_enforced=0 (host too small to run the pipeline's
#     threads in parallel — the p99.9 delta measures the scheduler).
#
# Usage: scripts/bench_report.sh [--smoke] [build-dir] [output-json]
#   --smoke   short benchmark windows (tier-2 CI gate, see scripts/check.sh)
set -eu

SMOKE=0
if [ "${1:-}" = "--smoke" ]; then
  SMOKE=1
  shift
fi
BUILD=${1:-build-bench}
OUT=${2:-BENCH_PR10.json}
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

# Host provenance for the report header: benchmark numbers are only
# comparable with the machine attached.
HOST_CORES=$(nproc)
HOST_CPU_MODEL=$(sed -n 's/^model name[[:space:]]*: //p' /proc/cpuinfo \
  | head -1)
[ -n "$HOST_CPU_MODEL" ] || HOST_CPU_MODEL=unknown
if [ -r /sys/devices/system/cpu/cpu0/cpufreq/scaling_governor ]; then
  HOST_GOVERNOR=$(cat /sys/devices/system/cpu/cpu0/cpufreq/scaling_governor)
else
  HOST_GOVERNOR=none  # no cpufreq (VM / fixed-frequency host)
fi

# Per-stage wall clock: stage <name> starts a stage, stage_done closes it.
STAGE_NAME=""
STAGE_T0=0
stage_done() {
  if [ -n "$STAGE_NAME" ]; then
    echo "   [$STAGE_NAME: $((SECONDS - STAGE_T0))s wall]"
  fi
}
stage() {
  stage_done
  STAGE_NAME="$1"
  STAGE_T0=$SECONDS
  echo "== $2"
}

# Benchmarks are only meaningful optimised: force a Release tree of our own
# so a Debug/sanitizer main build is never measured by accident.
cmake -B "$BUILD" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$BUILD" -j "$(nproc)" \
  --target micro_sim_engine micro_channel fig03_high_bimodal_policies \
           micro_introspect fig_fleet_policies micro_ingress micro_profiler \
           fig_deadline

WORK="$BUILD/bench_report"
mkdir -p "$WORK"

if [ "$SMOKE" = 1 ]; then
  ENGINE_MIN_TIME=0.1
else
  ENGINE_MIN_TIME=1
fi

stage engine "micro_sim_engine (events/sec, allocs/event, paired speedup x3 backends)"
"$BUILD/bench/micro_sim_engine" \
  --benchmark_min_time="$ENGINE_MIN_TIME" \
  --benchmark_format=json >"$WORK/engine.json"

stage channel "micro_channel (cycles/op, single vs burst)"
"$BUILD/bench/micro_channel" \
  --benchmark_filter='Cycles' \
  --benchmark_format=json >"$WORK/channel.json"

stage fig03 "fig03 smoke sweep (High Bimodal, d-FCFS / c-FCFS / DARC)"
if [ "$SMOKE" = 1 ]; then
  FIG03_MS=${PSP_BENCH_DURATION_MS:-20}
else
  FIG03_MS=${PSP_BENCH_DURATION_MS:-250}
fi
PSP_BENCH_JSON=1 PSP_BENCH_DURATION_MS="$FIG03_MS" \
  "$BUILD/bench/fig03_high_bimodal_policies" >"$WORK/fig03.out"

stage fleet "fig_fleet_policies (inter-server policies, 2-8 DARC servers)"
if [ "$SMOKE" = 1 ]; then
  FLEET_MS=${PSP_BENCH_DURATION_MS:-20}
else
  FLEET_MS=${PSP_BENCH_DURATION_MS:-250}
fi
PSP_BENCH_JSON=1 PSP_BENCH_DURATION_MS="$FLEET_MS" \
  "$BUILD/bench/fig_fleet_policies" >"$WORK/fleet.out"

stage deadline "fig_deadline (deadline tier: c-FCFS / DARC / EDF / slack-DARC)"
if [ "$SMOKE" = 1 ]; then
  DEADLINE_MS=${PSP_BENCH_DURATION_MS:-20}
else
  DEADLINE_MS=${PSP_BENCH_DURATION_MS:-250}
fi
PSP_BENCH_JSON=1 PSP_BENCH_DURATION_MS="$DEADLINE_MS" \
  "$BUILD/bench/fig_deadline" >"$WORK/deadline.out"

stage introspect "micro_introspect (p99 with vs without 10 Hz /metrics scrape)"
if [ "$SMOKE" = 1 ]; then
  INTROSPECT_REQS=4000 INTROSPECT_ROUNDS=2
else
  INTROSPECT_REQS=20000 INTROSPECT_ROUNDS=5
fi
# Exit 1 is the <5% p99 gate (advisory in smoke, fatal in full via the
# validator below); exit 2 means scrapes failed outright and is always fatal.
INTROSPECT_RC=0
PSP_BENCH_JSON=1 PSP_BENCH_REQUESTS="$INTROSPECT_REQS" \
PSP_BENCH_ROUNDS="$INTROSPECT_ROUNDS" \
  "$BUILD/bench/micro_introspect" >"$WORK/introspect.out" || INTROSPECT_RC=$?
cat "$WORK/introspect.out"
if [ "$INTROSPECT_RC" -ge 2 ]; then
  echo "micro_introspect: scrapes failed (rc=$INTROSPECT_RC)" >&2
  exit 1
fi

stage ingress "micro_ingress (ring vs UDP socket ingress, idle net-worker CPU)"
if [ "$SMOKE" = 1 ]; then
  INGRESS_REQS=600 INGRESS_ROUNDS=1 INGRESS_IDLE_MS=150
else
  INGRESS_REQS=4000 INGRESS_ROUNDS=3 INGRESS_IDLE_MS=400
fi
# Exit 1 is a gate breach (bounded-factor tail or idle-CPU ordering;
# advisory in smoke, fatal in full via the validator below); exit 2 means
# rounds failed outright and is always fatal.
INGRESS_RC=0
PSP_BENCH_JSON=1 PSP_BENCH_REQUESTS="$INGRESS_REQS" \
PSP_BENCH_ROUNDS="$INGRESS_ROUNDS" PSP_BENCH_IDLE_MS="$INGRESS_IDLE_MS" \
  "$BUILD/bench/micro_ingress" >"$WORK/ingress.out" || INGRESS_RC=$?
cat "$WORK/ingress.out"
if [ "$INGRESS_RC" -ge 2 ]; then
  echo "micro_ingress: rounds failed (rc=$INGRESS_RC)" >&2
  exit 1
fi

stage profiler "micro_profiler (p99.9 with vs without 99 Hz CPU-time sampling)"
if [ "$SMOKE" = 1 ]; then
  PROFILER_REQS=4000 PROFILER_ROUNDS=2
else
  PROFILER_REQS=20000 PROFILER_ROUNDS=5
fi
# Exit 1 is the noise-adjusted <5% p99.9 gate (advisory in smoke, fatal in
# full via the validator below); exit 2 means no samples landed and is
# always fatal — the profiler itself is broken, not just slow.
PROFILER_RC=0
PSP_BENCH_JSON=1 PSP_BENCH_REQUESTS="$PROFILER_REQS" \
PSP_BENCH_ROUNDS="$PROFILER_ROUNDS" \
  "$BUILD/bench/micro_profiler" >"$WORK/profiler.out" || PROFILER_RC=$?
cat "$WORK/profiler.out"
if [ "$PROFILER_RC" -ge 2 ]; then
  echo "micro_profiler: no samples collected (rc=$PROFILER_RC)" >&2
  exit 1
fi

stage_done

MODE=$([ "$SMOKE" = 1 ] && echo smoke || echo full) \
FIG03_MS="$FIG03_MS" FLEET_MS="$FLEET_MS" DEADLINE_MS="$DEADLINE_MS" \
HOST_CORES="$HOST_CORES" HOST_CPU_MODEL="$HOST_CPU_MODEL" \
HOST_GOVERNOR="$HOST_GOVERNOR" \
python3 - "$WORK" "$OUT" <<'PY'
import json, os, sys

work, out_path = sys.argv[1], sys.argv[2]
mode = os.environ["MODE"]
errors = []

def load(name):
    with open(os.path.join(work, name)) as f:
        return json.load(f)

engine = {b["name"]: b for b in load("engine.json")["benchmarks"]}
channel = {b["name"]: b for b in load("channel.json")["benchmarks"]}

# fig03 prints prose around the table; the JSON array sits on its own lines.
with open(os.path.join(work, "fig03.out")) as f:
    lines = f.read().splitlines()
try:
    start = lines.index("[")
    end = lines.index("]", start)
    fig03 = json.loads("\n".join(lines[start : end + 1]))
except ValueError:
    errors.append("fig03 output contains no JSON table (PSP_BENCH_JSON mode)")
    fig03 = []

# fig_fleet_policies prints headline prose plus the same JSON-array layout.
with open(os.path.join(work, "fleet.out")) as f:
    lines = f.read().splitlines()
try:
    start = lines.index("[")
    end = lines.index("]", start)
    fleet = json.loads("\n".join(lines[start : end + 1]))
except ValueError:
    errors.append("fleet output contains no JSON table (PSP_BENCH_JSON mode)")
    fleet = []

# fig_deadline prints headline prose plus the same JSON-array layout.
with open(os.path.join(work, "deadline.out")) as f:
    lines = f.read().splitlines()
try:
    start = lines.index("[")
    end = lines.index("]", start)
    deadline = json.loads("\n".join(lines[start : end + 1]))
except ValueError:
    errors.append(
        "deadline output contains no JSON table (PSP_BENCH_JSON mode)")
    deadline = []

# micro_introspect prints prose plus one JSON object line (PSP_BENCH_JSON).
introspect = {}
with open(os.path.join(work, "introspect.out")) as f:
    for line in f.read().splitlines():
        if line.startswith("{"):
            introspect = json.loads(line)
            break
if not introspect:
    errors.append("micro_introspect emitted no JSON result line")
introspect["target_delta_pct"] = 5.0

# micro_ingress prints a table plus one JSON object line (PSP_BENCH_JSON).
ingress = {}
with open(os.path.join(work, "ingress.out")) as f:
    for line in f.read().splitlines():
        if line.startswith("{"):
            ingress = json.loads(line)
            break
if not ingress:
    errors.append("micro_ingress emitted no JSON result line")

# micro_profiler prints prose plus one JSON object line (PSP_BENCH_JSON).
profiler = {}
with open(os.path.join(work, "profiler.out")) as f:
    for line in f.read().splitlines():
        if line.startswith("{"):
            profiler = json.loads(line)
            break
if not profiler:
    errors.append("micro_profiler emitted no JSON result line")
profiler["target_delta_pct"] = 5.0

def bench(table, name, field):
    if name not in table:
        errors.append(f"missing benchmark {name}")
        return 0.0
    value = table[name].get(field)
    if value is None:
        errors.append(f"benchmark {name} lacks field {field}")
        return 0.0
    return float(value)

eng = {}
# Standalone throughput (informational: separately-timed runs drift with the
# shared box's clock, so the gate uses the paired counters below).
for batch in (256, 4096):
    new = bench(engine, f"BM_EngineScheduleDrain/{batch}", "items_per_second")
    old = bench(engine, f"BM_LegacyScheduleDrain/{batch}", "items_per_second")
    eng[f"events_per_sec_{batch}"] = new
    eng[f"legacy_events_per_sec_{batch}"] = old
# Paired speedups: engine and legacy rounds interleaved in one measured loop,
# ratio of TSC totals — clock wander cancels. These are the gated numbers.
# The default (auto-selected) engine is what gates; heap-/wheel-pinned runs
# record both backends' curves, and backend_selected_* records the auto
# heuristic's per-batch decision.
for batch in (256, 512, 1024, 4096, 16384):
    eng[f"paired_speedup_{batch}"] = bench(
        engine, f"BM_ScheduleDrainSpeedup/{batch}", "speedup")
    eng[f"heap_paired_speedup_{batch}"] = bench(
        engine, f"BM_ScheduleDrainSpeedupHeap/{batch}", "speedup")
    eng[f"wheel_paired_speedup_{batch}"] = bench(
        engine, f"BM_ScheduleDrainSpeedupWheel/{batch}", "speedup")
    wheel_active = bench(
        engine, f"BM_ScheduleDrainSpeedup/{batch}", "wheel_active")
    eng[f"backend_selected_{batch}"] = (
        "wheel" if wheel_active >= 0.5 else "heap")
eng["cascade_stress_allocs_per_event"] = bench(
    engine, "BM_CascadeStress/4096", "allocs_per_event")
eng["cascade_stress_cascades_per_event"] = bench(
    engine, "BM_CascadeStress/4096", "cascades_per_event")
eng["steady_events_per_sec"] = bench(
    engine, "BM_EngineSteadyState", "items_per_second")
eng["legacy_steady_events_per_sec"] = bench(
    engine, "BM_LegacySteadyState", "items_per_second")
eng["steady_allocs_per_event"] = bench(
    engine, "BM_EngineSteadyState", "allocs_per_event")
eng["legacy_steady_allocs_per_event"] = bench(
    engine, "BM_LegacySteadyState", "allocs_per_event")
eng["steady_arena_growths"] = bench(
    engine, "BM_EngineSteadyState", "arena_growths")
eng["schedule_drain_allocs_per_event"] = bench(
    engine, "BM_EngineScheduleDrain/4096", "allocs_per_event")
eng["target_speedup"] = 3.0
eng["stress_floor_speedup"] = 2.5  # 16384-batch floor (memory-bound regime)

chan = {
    "spsc_cycles_per_op": bench(
        channel, "BM_SpscPushPopCycles", "cycles_per_op"),
    "spsc_burst_cycles_per_op": bench(
        channel, "BM_SpscBurstPushPopCycles", "cycles_per_op"),
}
if chan["spsc_burst_cycles_per_op"] > 0:
    chan["burst_speedup"] = (
        chan["spsc_cycles_per_op"] / chan["spsc_burst_cycles_per_op"])
else:
    chan["burst_speedup"] = 0.0

report = {
    "schema": "psp-bench-report/1",
    "generated_by": "scripts/bench_report.sh",
    "mode": mode,
    "host": {
        "cores": int(os.environ["HOST_CORES"]),
        "cpu_model": os.environ["HOST_CPU_MODEL"],
        "governor": os.environ["HOST_GOVERNOR"],
    },
    "fig03_duration_ms": int(os.environ["FIG03_MS"]),
    "engine": eng,
    "channel": chan,
    "fig03_high_bimodal": fig03,
    "fleet_duration_ms": int(os.environ["FLEET_MS"]),
    "fleet_policies": fleet,
    "deadline_duration_ms": int(os.environ["DEADLINE_MS"]),
    "deadline_policies": deadline,
    "introspect": introspect,
    "ingress": ingress,
    "profiler": profiler,
}

# --- Validation ---------------------------------------------------------------
if not fig03:
    errors.append("fig03 sweep is empty")
for row in fig03:
    for key in ("load", "policy", "p999_slowdown"):
        if key not in row:
            errors.append(f"fig03 row missing key {key!r}: {row}")
            break
policies = {row.get("policy") for row in fig03}
for expected in ("d-FCFS", "c-FCFS", "DARC"):
    if expected not in policies:
        errors.append(f"fig03 sweep lacks policy {expected}")

# Fleet sweep schema + the paired inter-server policy gate: at 70% fleet
# load the depth-aware po2c must not lose to random on p99.9 slowdown for
# any (workload, servers) pair — same seed, same arrival trace (the fleet
# arrival stream is split from the policy stream), so the comparison is
# paired and noise-free. Fatal in full mode, advisory at smoke windows
# (short runs see few tail samples).
if not fleet:
    errors.append("fleet_policies sweep is empty")
fleet_gates = []
for row in fleet:
    for key in ("workload", "servers", "load", "policy", "p999_slowdown"):
        if key not in row:
            errors.append(f"fleet row missing key {key!r}: {row}")
            break
fleet_policies_seen = {row.get("policy") for row in fleet}
for expected in ("random", "rss", "rr", "po2c", "shortest-q"):
    if expected not in fleet_policies_seen:
        errors.append(f"fleet sweep lacks policy {expected}")
by_point = {}
for row in fleet:
    if row.get("load") == 0.7:
        key = (row.get("workload"), row.get("servers"))
        by_point.setdefault(key, {})[row.get("policy")] = row.get(
            "p999_slowdown", 0.0)
for (workload, servers), pols in sorted(by_point.items()):
    if "random" in pols and "po2c" in pols:
        if pols["po2c"] > pols["random"]:
            fleet_gates.append(
                f"fleet po2c p99.9 {pols['po2c']:.1f}x exceeds random "
                f"{pols['random']:.1f}x at 70% load "
                f"({workload}, {servers} servers)")

# Deadline sweep schema + the deadline-policy gate: at 70% load on the High
# Bimodal workload, EDF dispatch must not lose to deadline-blind c-FCFS on
# deadline-miss-rate — same seed and testbed for every policy, so the
# comparison is paired. Fatal in full mode, advisory at smoke windows
# (short runs see few deadline samples).
if not deadline:
    errors.append("deadline_policies sweep is empty")
deadline_gates = []
for row in deadline:
    for key in ("workload", "load", "policy", "miss_rate_pct",
                "goodput_krps", "p999_slowdown"):
        if key not in row:
            errors.append(f"deadline row missing key {key!r}: {row}")
            break
deadline_policies_seen = {row.get("policy") for row in deadline}
for expected in ("c-FCFS", "DARC", "EDF", "slack-DARC"):
    if expected not in deadline_policies_seen:
        errors.append(f"deadline sweep lacks policy {expected}")
deadline_by_point = {}
for row in deadline:
    if row.get("load") == 0.7:
        deadline_by_point.setdefault(row.get("workload"), {})[
            row.get("policy")] = row.get("miss_rate_pct", 0.0)
hb = deadline_by_point.get("high-bimodal", {})
if "EDF" in hb and "c-FCFS" in hb and hb["EDF"] > hb["c-FCFS"]:
    deadline_gates.append(
        f"deadline EDF miss rate {hb['EDF']:.3f}% exceeds c-FCFS "
        f"{hb['c-FCFS']:.3f}% at 70% load (high-bimodal)")

if eng["steady_allocs_per_event"] > 0.01:
    errors.append(
        "engine steady state allocates: "
        f"{eng['steady_allocs_per_event']:.4f} allocs/event (want 0)")
if eng["steady_arena_growths"] > 0:
    errors.append(
        f"engine arena grew {eng['steady_arena_growths']:.0f} times in "
        "steady state (want 0)")
if eng["schedule_drain_allocs_per_event"] > 0.01:
    errors.append(
        "engine schedule+drain allocates: "
        f"{eng['schedule_drain_allocs_per_event']:.4f} allocs/event (want 0)")
if eng["cascade_stress_allocs_per_event"] > 0.01:
    errors.append(
        "timer-wheel cascade stress allocates: "
        f"{eng['cascade_stress_allocs_per_event']:.4f} allocs/event (want 0)")

# Speedup gates. With the timer wheel, every population the paper-figure
# experiments and the fleet sweeps hold in flight — 256 through 4096 — must
# clear the full 3x bar (the heap-only engine collapsed to ~1.5x at 4096;
# its curve is still recorded under heap_paired_speedup_*). Only the 16384
# point keeps a floor: ~2.8 MB of combined engine+legacy working set makes
# the interleaved measurement memory-bound for both sides. See docs/PERF.md.
rep_speedup = min(eng["paired_speedup_256"], eng["paired_speedup_512"],
                  eng["paired_speedup_1024"], eng["paired_speedup_4096"])
gates = []
if rep_speedup < eng["target_speedup"]:
    gates.append(f"paired speedup {rep_speedup:.2f}x below "
                 f"{eng['target_speedup']:.1f}x target (gated "
                 "batches 256/512/1024/4096)")
if eng["paired_speedup_16384"] < eng["stress_floor_speedup"]:
    gates.append(f"paired speedup {eng['paired_speedup_16384']:.2f}x below "
                 f"{eng['stress_floor_speedup']:.1f}x stress floor "
                 "(batch 16384)")
if introspect.get("scrapes", 0) <= 0 or introspect.get("bad_scrapes", 1) > 0:
    errors.append("introspect scrape-under-load bench had failed scrapes")
if introspect.get("delta_pct", 100.0) >= introspect["target_delta_pct"]:
    gates.append(
        f"scrape-under-load p99 delta {introspect.get('delta_pct'):.2f}% "
        f"above {introspect['target_delta_pct']:.0f}% budget (10 Hz /metrics)")

# Profiler-overhead gate: delta within budget plus the bench's own noise
# floor (the spread its interleaved idle rounds show on this host).
if profiler:
    if profiler.get("samples", 0) <= 0:
        errors.append("profiler bench collected no samples")
    profiler_budget = (profiler["target_delta_pct"] +
                       profiler.get("noise_pct", 0.0))
    if profiler.get("delta_pct", 100.0) >= profiler_budget:
        gates.append(
            f"profiler-under-load p99.9 delta {profiler.get('delta_pct'):.2f}% "
            f"above noise-adjusted {profiler_budget:.2f}% budget "
            f"({profiler.get('hz', 0)} Hz sampling, idle-round spread "
            f"{profiler.get('noise_pct', 0.0):.2f}%)")

# Socket-ingress gates: bounded p99.9 factor over the ring baseline (with
# an absolute floor) and adaptive polling beating busy polling on idle CPU.
if ingress:
    bound = max(ingress.get("target_factor", 25.0) *
                ingress.get("ring_p999_nanos", 0.0),
                ingress.get("floor_nanos", 2e6))
    for variant in ("udp_yield", "udp_adaptive", "udp_sampled"):
        p999 = ingress.get(f"{variant}_p999_nanos", 0.0)
        if p999 > bound:
            gates.append(
                f"ingress {variant} p99.9 {p999 / 1e3:.0f}us exceeds "
                f"{bound / 1e3:.0f}us bound "
                f"({ingress.get('target_factor'):.0f}x ring p99.9 "
                f"{ingress.get('ring_p999_nanos', 0.0) / 1e3:.0f}us, floor "
                f"{ingress.get('floor_nanos', 0.0) / 1e3:.0f}us)")
    overhead = ingress.get("trace_overhead_pct")
    budget = ingress.get("trace_overhead_budget_pct", 5.0)
    enforced = ingress.get("trace_overhead_enforced", 1)
    if overhead is None:
        errors.append("ingress result lacks trace_overhead_pct")
    elif overhead >= budget:
        msg = (f"ingress trace sampling p99.9 overhead {overhead:.2f}% at or "
               f"above {budget:.1f}% budget (1-in-64 wire sampling)")
        if enforced:
            gates.append(msg)
        else:
            print(f"WARNING (host oversubscribed, not fatal): {msg}")
    idle_busy = ingress.get("idle_cpu_busy", -1.0)
    idle_adaptive = ingress.get("idle_cpu_adaptive", -1.0)
    if idle_busy < 0 or idle_adaptive < 0:
        errors.append("ingress idle-CPU stage produced no samples")
    elif idle_adaptive >= idle_busy:
        gates.append(
            f"ingress adaptive idle CPU {idle_adaptive * 100:.1f}% does not "
            f"undercut busy polling {idle_busy * 100:.1f}%")
for msg in gates + fleet_gates + deadline_gates:
    if mode == "full":
        errors.append(msg)
    else:
        print(f"WARNING (smoke, not fatal): {msg}")

with open(out_path, "w") as f:
    json.dump(report, f, indent=2)
    f.write("\n")
print(f"wrote {out_path}")
host = report["host"]
print(f"  host: {host['cores']} cores, {host['cpu_model']}, "
      f"governor {host['governor']}")
print("  paired engine speedup: " + ", ".join(
    f"{eng[f'paired_speedup_{b}']:.2f}x@{b}"
    for b in (256, 512, 1024, 4096, 16384))
    + " (target >= 3x at 256-4096, floor 2.5x at 16384)")
print("  backend selected (auto): " + ", ".join(
    f"{eng[f'backend_selected_{b}']}@{b}"
    for b in (256, 512, 1024, 4096, 16384)))
print("  wheel-pinned speedup: " + ", ".join(
    f"{eng[f'wheel_paired_speedup_{b}']:.2f}x@{b}"
    for b in (256, 1024, 4096, 16384))
    + f"; heap-pinned @4096: {eng['heap_paired_speedup_4096']:.2f}x")
print(f"  cascade stress: "
      f"{eng['cascade_stress_cascades_per_event']:.2f} cascades/event, "
      f"{eng['cascade_stress_allocs_per_event']:.4f} allocs/event (want 0)")
print(f"  steady-state allocs/event: {eng['steady_allocs_per_event']:.4f} "
      f"(legacy {eng['legacy_steady_allocs_per_event']:.2f})")
print(f"  spsc cycles/op: {chan['spsc_cycles_per_op']:.1f} single, "
      f"{chan['spsc_burst_cycles_per_op']:.1f} burst")
print(f"  scrape-under-load p99 delta: {introspect.get('delta_pct', 0):.2f}% "
      f"({introspect.get('scrapes', 0):.0f} scrapes, budget < 5%)")
if profiler:
    print(f"  profiler-under-load p99.9 delta: "
          f"{profiler.get('delta_pct', 0):.2f}% at "
          f"{profiler.get('hz', 0)} Hz "
          f"({profiler.get('samples', 0):.0f} samples, budget < 5% + "
          f"{profiler.get('noise_pct', 0.0):.2f}% idle-round noise)")
if ingress:
    print(f"  ingress p99.9: ring {ingress.get('ring_p999_nanos', 0) / 1e3:.0f}us, "
          f"udp-yield {ingress.get('udp_yield_p999_nanos', 0) / 1e3:.0f}us, "
          f"udp-adaptive {ingress.get('udp_adaptive_p999_nanos', 0) / 1e3:.0f}us, "
          f"udp-sampled {ingress.get('udp_sampled_p999_nanos', 0) / 1e3:.0f}us "
          f"(gate: <= {ingress.get('target_factor', 0):.0f}x ring)")
    print(f"  ingress trace-sampling p99.9 overhead: "
          f"{ingress.get('trace_overhead_pct', 0):.2f}% "
          f"(gate: < {ingress.get('trace_overhead_budget_pct', 5.0):.1f}%)")
    print(f"  ingress idle net-worker CPU: busy "
          f"{ingress.get('idle_cpu_busy', 0) * 100:.1f}%, adaptive "
          f"{ingress.get('idle_cpu_adaptive', 0) * 100:.1f}% "
          "(gate: adaptive < busy)")
for (workload, servers), pols in sorted(by_point.items()):
    if "random" in pols and "po2c" in pols and pols["po2c"] > 0:
        print(f"  fleet {workload} @70% {servers} servers: "
              f"po2c/random p99.9 ratio "
              f"{pols['random'] / pols['po2c']:.2f}x (gate: >= 1)")
for workload, pols in sorted(deadline_by_point.items()):
    if pols:
        print(f"  deadline {workload} @70% miss rate: " + ", ".join(
            f"{policy} {pols[policy]:.3f}%"
            for policy in ("c-FCFS", "DARC", "EDF", "slack-DARC")
            if policy in pols)
            + " (gate: EDF <= c-FCFS on high-bimodal)")

if errors:
    print("bench report validation FAILED:", file=sys.stderr)
    for e in errors:
        print(f"  - {e}", file=sys.stderr)
    sys.exit(1)
PY
