#!/usr/bin/env bash
# Regenerates everything: build, tests, every figure/table bench, micro
# benches — archiving outputs to test_output.txt and bench_output.txt at the
# repo root. Usage: scripts/run_all.sh [build-dir]
set -u
BUILD=${1:-build}
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

cmake -B "$BUILD" -G Ninja
cmake --build "$BUILD"

ctest --test-dir "$BUILD" 2>&1 | tee "$ROOT/test_output.txt"

{
  for b in "$BUILD"/bench/*; do
    if [ -x "$b" ] && [ ! -d "$b" ]; then
      echo "===================================================================="
      echo "== $(basename "$b")"
      echo "===================================================================="
      "$b"
      echo
    fi
  done
} 2>&1 | tee "$ROOT/bench_output.txt"
